/// \file test_shard.cpp
/// \brief Shard packing and the sharded engine's determinism contract:
/// same stream → same shards at any thread count, default CSV
/// byte-identical with sharding on or off, and the warm-manager escape
/// hatches (quota, watermark, mid-shard failure) forcing clean cold
/// continuations.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "engine/shard.hpp"
#include "workload/generators.hpp"

namespace bddmin {
namespace {

using engine::EngineOptions;
using engine::Job;
using engine::pack_shards;
using engine::Shard;
using engine::ShardPlan;

std::vector<std::size_t> identity_run(std::size_t n) {
  std::vector<std::size_t> run(n);
  std::iota(run.begin(), run.end(), std::size_t{0});
  return run;
}

/// The packing invariants every plan must satisfy: shards tile the run
/// list contiguously in order, and each shard's cost is the sum of its
/// jobs' estimates.
void check_plan(const ShardPlan& plan, const std::vector<Job>& jobs,
                const std::vector<std::size_t>& run) {
  std::size_t next = 0;
  std::uint64_t total = 0;
  for (const Shard& s : plan.shards) {
    EXPECT_EQ(s.first, next);
    ASSERT_GT(s.count, 0u);
    std::uint64_t cost = 0;
    for (std::uint32_t j = 0; j < s.count; ++j) {
      cost += engine::estimate_job_cost(jobs[run[s.first + j]]);
    }
    EXPECT_EQ(s.cost, cost);
    next += s.count;
    total += cost;
  }
  EXPECT_EQ(next, run.size());
  EXPECT_EQ(plan.total_cost, total);
}

TEST(ShardPacking, CostModelIsPureAndPositive) {
  const Job tt = engine::make_tt_job("t", 0x6u, 0xFu, 6);
  // kJobFixedCost + two 2^6-bit tables = 64 + 16 bytes.
  EXPECT_EQ(engine::estimate_job_cost(tt), engine::kJobFixedCost + 16);
  Job forest;
  forest.kind = engine::PayloadKind::kForest;
  forest.forest = std::string(100, 'x');
  EXPECT_EQ(engine::estimate_job_cost(forest), engine::kJobFixedCost + 100);
  EXPECT_EQ(engine::estimate_job_cost(tt), engine::estimate_job_cost(tt));
}

TEST(ShardPacking, CoversRunListInOrderDeterministically) {
  const std::vector<Job> jobs = engine::random_jobs(40, 8, 0.5, 7);
  const std::vector<std::size_t> run = identity_run(jobs.size());
  const ShardPlan a = pack_shards(jobs, run, engine::kDefaultShardCost);
  check_plan(a, jobs, run);
  EXPECT_GT(a.size(), 0u);
  EXPECT_LT(a.size(), jobs.size());  // something actually coalesced
  // Pure function of (jobs, run, budget): repacking yields the same plan.
  const ShardPlan b = pack_shards(jobs, run, engine::kDefaultShardCost);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.shards[i].first, b.shards[i].first);
    EXPECT_EQ(a.shards[i].count, b.shards[i].count);
    EXPECT_EQ(a.shards[i].cost, b.shards[i].cost);
  }
}

TEST(ShardPacking, BudgetZeroIsOneJobPerShard) {
  const std::vector<Job> jobs = engine::random_jobs(9, 6, 0.5, 3);
  const std::vector<std::size_t> run = identity_run(jobs.size());
  const ShardPlan plan = pack_shards(jobs, run, 0);
  check_plan(plan, jobs, run);
  ASSERT_EQ(plan.size(), jobs.size());
  for (const Shard& s : plan.shards) EXPECT_EQ(s.count, 1u);
}

TEST(ShardPacking, OversizedJobStillGetsASingletonShard) {
  std::vector<Job> jobs;
  jobs.push_back(engine::make_tt_job("small", 0x6u, 0xFu, 4));
  Job huge;
  huge.name = "huge";
  huge.num_vars = 8;
  huge.kind = engine::PayloadKind::kForest;
  huge.forest = std::string(10'000, 'n');  // cost far above the budget
  jobs.push_back(huge);
  jobs.push_back(engine::make_tt_job("small2", 0x9u, 0xFu, 4));
  const std::vector<std::size_t> run = identity_run(jobs.size());
  const ShardPlan plan = pack_shards(jobs, run, /*cost_budget=*/256);
  check_plan(plan, jobs, run);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.shards[1].count, 1u);
  EXPECT_GT(plan.shards[1].cost, 256u);
}

TEST(ShardPacking, MaxShardJobsCapBoundsTinyJobStreams) {
  // 2-var truth tables cost kJobFixedCost + 1 each: a huge budget would
  // otherwise swallow all 600 into one shard.
  std::vector<Job> jobs;
  for (int i = 0; i < 600; ++i) {
    jobs.push_back(engine::make_tt_job("t" + std::to_string(i),
                                       static_cast<std::uint64_t>(i & 0xF),
                                       0xFu, 2));
  }
  const std::vector<std::size_t> run = identity_run(jobs.size());
  const ShardPlan plan = pack_shards(jobs, run, /*cost_budget=*/1u << 30);
  check_plan(plan, jobs, run);
  EXPECT_EQ(plan.max_shard_jobs, engine::kMaxShardJobs);
  EXPECT_EQ(plan.size(), (600 + engine::kMaxShardJobs - 1) /
                             engine::kMaxShardJobs);
}

// ---- The engine under sharding -----------------------------------------

TEST(ShardEngine, SameStreamSameShardsAndCsvAtAnyThreadCount) {
  const std::vector<Job> jobs = engine::random_jobs(24, 8, 0.5, 21);
  std::string baseline;
  std::string counters_baseline;
  std::uint64_t shards = 0;
  std::uint64_t warm = 0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    EngineOptions opts;
    opts.num_threads = threads;
    opts.shard_cost = engine::kDefaultShardCost;
    const engine::BatchReport report = engine::run_batch(jobs, opts);
    const std::string csv = engine::report_csv(report);
    const std::string counters_csv = engine::report_csv(
        report, /*include_timings=*/false, /*include_counters=*/true);
    if (baseline.empty()) {
      baseline = csv;
      counters_baseline = counters_csv;
      shards = report.metrics.shards;
      warm = report.metrics.warm_jobs;
      EXPECT_GT(shards, 0u);
    } else {
      // The packing — and hence even the warm/cold split and the
      // cache-sensitive counters block — is a pure function of the
      // submission stream, not of the worker count.
      EXPECT_EQ(csv, baseline) << threads;
      EXPECT_EQ(counters_csv, counters_baseline) << threads;
      EXPECT_EQ(report.metrics.shards, shards) << threads;
      EXPECT_EQ(report.metrics.warm_jobs, warm) << threads;
    }
  }
}

TEST(ShardEngine, DefaultCsvIsByteIdenticalShardOnVsOff) {
  const std::vector<Job> jobs = engine::random_jobs(24, 8, 0.5, 5);
  EngineOptions off;
  off.num_threads = 2;
  const engine::BatchReport cold = engine::run_batch(jobs, off);
  EXPECT_EQ(cold.metrics.warm_jobs, 0u);

  EngineOptions on = off;
  on.shard_cost = engine::kDefaultShardCost;
  const engine::BatchReport sharded = engine::run_batch(jobs, on);
  EXPECT_GT(sharded.metrics.warm_jobs, 0u);  // reuse actually happened
  EXPECT_LT(sharded.metrics.shards, cold.metrics.shards);
  EXPECT_EQ(engine::report_csv(sharded), engine::report_csv(cold));
}

TEST(ShardEngine, QuotaConfiguredForcesEveryJobColdAndStillMatches) {
  // Node quotas are an escape hatch: warm tables would change *when* a
  // quota trips, so configuring one disables warm reuse entirely — and
  // the mid-shard degrade must leave the rest of the shard intact.
  const std::vector<Job> jobs = engine::random_jobs(16, 10, 0.5, 13);
  EngineOptions off;
  off.num_threads = 2;
  off.node_limit = 120;  // small enough to trip on some 10-var jobs
  const engine::BatchReport cold = engine::run_batch(jobs, off);

  EngineOptions on = off;
  on.shard_cost = engine::kDefaultShardCost;
  const engine::BatchReport sharded = engine::run_batch(jobs, on);
  EXPECT_EQ(sharded.metrics.warm_jobs, 0u);
  EXPECT_EQ(sharded.metrics.cold_jobs, cold.metrics.cold_jobs);
  EXPECT_EQ(engine::report_csv(sharded), engine::report_csv(cold));
  // The quota must actually have fired for the escape hatch to matter,
  // and a degrade is not a batch failure.
  EXPECT_GT(sharded.count(engine::JobStatus::kResourceLimit), 0u);
  EXPECT_EQ(sharded.count(engine::JobStatus::kError), 0u);
  EXPECT_EQ(sharded.count(engine::JobStatus::kOk) +
                sharded.count(engine::JobStatus::kResourceLimit),
            jobs.size());
}

TEST(ShardEngine, NodeWatermarkForcesMidShardResets) {
  const std::vector<Job> jobs = engine::random_jobs(16, 8, 0.5, 17);
  EngineOptions opts;
  opts.num_threads = 1;
  opts.shard_cost = engine::kDefaultShardCost;
  opts.shard_node_watermark = 1;  // any allocation exceeds it
  const engine::BatchReport pinned = engine::run_batch(jobs, opts);
  EXPECT_EQ(pinned.metrics.warm_jobs, 0u);

  EngineOptions plain;
  plain.num_threads = 1;
  const engine::BatchReport cold = engine::run_batch(jobs, plain);
  EXPECT_EQ(engine::report_csv(pinned), engine::report_csv(cold));
}

TEST(ShardEngine, MidShardDecodeFailureContinuesColdAndClean) {
  // A throwing job drops the pooled manager; the next job in the same
  // shard must start cold and succeed as if nothing happened.
  std::vector<Job> jobs;
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(engine::make_tt_job("good" + std::to_string(i),
                                       0x96u + i, 0xFFu, 3));
  }
  Job bad;
  bad.name = "bad";
  bad.num_vars = 3;
  bad.kind = engine::PayloadKind::kForest;
  bad.forest = "this is not a serialized forest";
  jobs.insert(jobs.begin() + 3, bad);

  EngineOptions opts;
  opts.num_threads = 1;
  opts.shard_cost = engine::kDefaultShardCost;
  opts.dedup_jobs = false;
  const engine::BatchReport report = engine::run_batch(jobs, opts);
  ASSERT_EQ(report.outcomes.size(), jobs.size());
  EXPECT_EQ(report.outcomes[3].status, engine::JobStatus::kError);
  for (const std::size_t i : {0u, 1u, 2u, 4u, 5u, 6u}) {
    EXPECT_EQ(report.outcomes[i].status, engine::JobStatus::kOk) << i;
  }

  EngineOptions off = opts;
  off.shard_cost = 0;
  EXPECT_EQ(engine::report_csv(report),
            engine::report_csv(engine::run_batch(jobs, off)));
}

TEST(ShardEngine, HeavyTierGeneratorIsDeterministicAndSized) {
  const std::vector<Job> a = workload::heavy_tier_jobs(1, 0x5eed);
  const std::vector<Job> b = workload::heavy_tier_jobs(1, 0x5eed);
  ASSERT_EQ(a.size(), 616u);  // 600 tt + 16 forest per unit of scale
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].f_tt, b[i].f_tt);
    EXPECT_EQ(a[i].forest, b[i].forest);
  }
  EXPECT_NE(workload::heavy_tier_jobs(1, 0x0dd).back().forest,
            a.back().forest);
}

}  // namespace
}  // namespace bddmin
