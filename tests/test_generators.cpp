#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "bdd/ops.hpp"
#include "fsm/reach.hpp"
#include "minimize/sibling.hpp"

namespace bddmin::workload {
namespace {

using fsm::SymbolicFsm;

struct Built {
  Manager mgr;
  SymbolicFsm sym;
  std::vector<std::uint32_t> st;

  explicit Built(const MachineSpec& spec)
      : mgr(spec.num_inputs + spec.num_state_bits) {
    std::vector<std::uint32_t> in(spec.num_inputs);
    for (unsigned i = 0; i < spec.num_inputs; ++i) in[i] = i;
    for (unsigned k = 0; k < spec.num_state_bits; ++k) {
      st.push_back(spec.num_inputs + k);
    }
    sym = spec.build(mgr, in, st);
  }

  /// Evaluate the machine's step function on concrete values.
  unsigned step(unsigned state, unsigned input) {
    std::vector<bool> a(mgr.num_vars(), false);
    for (std::size_t i = 0; i < sym.input_vars.size(); ++i) {
      a[sym.input_vars[i]] = (input >> i) & 1;
    }
    for (std::size_t k = 0; k < st.size(); ++k) a[st[k]] = (state >> k) & 1;
    unsigned next = 0;
    for (std::size_t k = 0; k < sym.next_state.size(); ++k) {
      if (eval(mgr, sym.next_state[k], a)) next |= 1u << k;
    }
    return next;
  }
};

TEST(Generators, CounterIncrementsModulo2N) {
  Built rig(make_counter(4));
  for (unsigned s = 0; s < 16; ++s) {
    EXPECT_EQ(rig.step(s, 0), s);                  // enable off: hold
    EXPECT_EQ(rig.step(s, 1), (s + 1) & 0xF);      // enable on: +1
  }
}

TEST(Generators, ModCounterWrapsAtModulus) {
  Built rig(make_mod_counter(10));
  for (unsigned s = 0; s < 10; ++s) {
    EXPECT_EQ(rig.step(s, 1), (s + 1) % 10);
    EXPECT_EQ(rig.step(s, 0), s);
  }
}

TEST(Generators, ModCounterUnreachableEncodingsEnableMinimization) {
  // The reachable care set must let restrict shrink at least one
  // next-state function of a non-power-of-two counter.
  using fsm::ImageMethod;
  const MachineSpec spec = make_mod_counter(10);
  Manager mgr(1 + 2 * spec.num_state_bits);
  std::vector<std::uint32_t> in{0};
  std::vector<std::uint32_t> st;
  std::vector<std::uint32_t> nx;
  for (unsigned k = 0; k < spec.num_state_bits; ++k) {
    st.push_back(1 + 2 * k);
    nx.push_back(1 + 2 * k + 1);
  }
  const fsm::SymbolicFsm sym = spec.build(mgr, in, st);
  const fsm::ReachResult reach = fsm::reachable_states(mgr, sym, nx);
  EXPECT_DOUBLE_EQ(sat_count(mgr, reach.reached.edge(), 4), 10.0);
  std::size_t before = 0;
  std::size_t after = 0;
  for (const Edge delta : sym.next_state) {
    before += count_nodes(mgr, delta);
    after += count_nodes(
        mgr, minimize::restrict_dc(mgr, delta, reach.reached.edge()));
  }
  EXPECT_LT(after, before);
}

TEST(Generators, GrayCounterStepsAreSingleBitFlips) {
  Built rig(make_gray_counter(4));
  unsigned state = 0;
  std::set<unsigned> seen;
  for (int step = 0; step < 16; ++step) {
    seen.insert(state);
    const unsigned next = rig.step(state, 1);
    EXPECT_EQ(std::popcount(state ^ next), 1) << "state " << state;
    EXPECT_EQ(rig.step(state, 0), state);
    state = next;
  }
  EXPECT_EQ(seen.size(), 16u);  // full gray cycle
}

TEST(Generators, LfsrShiftsWithFeedback) {
  Built rig(make_lfsr(4, 0b0011));
  for (unsigned s = 1; s < 16; ++s) {
    const unsigned fb = ((s >> 0) ^ (s >> 1)) & 1;
    const unsigned expect = (s >> 1) | (fb << 3);
    EXPECT_EQ(rig.step(s, 1), expect);
    EXPECT_EQ(rig.step(s, 0), s);
  }
  EXPECT_EQ(rig.step(0, 1), 0u);  // all-zero fixed point
}

TEST(Generators, AccumulatorAddsInputWord) {
  Built rig(make_accumulator(4, 3));
  for (unsigned s = 0; s < 16; ++s) {
    for (unsigned w = 0; w < 8; ++w) {
      EXPECT_EQ(rig.step(s, w), (s + w) & 0xF);
    }
  }
}

TEST(Generators, MultRegisterComputes5XPlusInput) {
  Built rig(make_mult_register(4, 2));
  for (unsigned s = 0; s < 16; ++s) {
    for (unsigned w = 0; w < 4; ++w) {
      EXPECT_EQ(rig.step(s, w), (5 * s + w) & 0xF);
    }
  }
}

TEST(Generators, MinmaxTracksExtremes) {
  Built rig(make_minmax(3));
  // state layout: low 3 bits = min, high 3 bits = max.
  const auto pack = [](unsigned lo, unsigned hi) { return lo | (hi << 3); };
  EXPECT_EQ(rig.step(pack(7, 0), 3), pack(3, 3));   // first sample
  EXPECT_EQ(rig.step(pack(2, 5), 1), pack(1, 5));   // new minimum
  EXPECT_EQ(rig.step(pack(2, 5), 6), pack(2, 6));   // new maximum
  EXPECT_EQ(rig.step(pack(2, 5), 4), pack(2, 5));   // inside the band
}

TEST(Generators, ShiftRegisterShifts) {
  Built rig(make_shift_register(4));
  EXPECT_EQ(rig.step(0b0101, 1), 0b1011u);
  EXPECT_EQ(rig.step(0b1111, 0), 0b1110u);
}

TEST(Generators, RandomMealyIsDeterministicInTheSeed) {
  const MachineSpec a = make_random_mealy(7, 2, 2, 5);
  const MachineSpec b = make_random_mealy(7, 2, 2, 5);
  const MachineSpec c = make_random_mealy(7, 2, 2, 6);
  Built ra(a);
  Built rb(b);
  Built rc(c);
  bool differs_from_c = false;
  for (unsigned s = 0; s < 7; ++s) {
    for (unsigned w = 0; w < 4; ++w) {
      EXPECT_EQ(ra.step(s, w), rb.step(s, w));
      differs_from_c |= ra.step(s, w) != rc.step(s, w);
    }
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(Generators, SpecsDeclareConsistentShapes) {
  for (const MachineSpec& spec :
       {make_counter(3), make_gray_counter(3), make_lfsr(5, 0b101),
        make_accumulator(4, 2), make_mult_register(4, 2), make_minmax(2),
        make_shift_register(3), make_random_mealy(4, 1, 1, 1)}) {
    Built rig(spec);
    EXPECT_EQ(rig.sym.next_state.size(), spec.num_state_bits) << spec.name;
    EXPECT_EQ(rig.sym.outputs.size(), spec.num_outputs) << spec.name;
    EXPECT_NE(rig.sym.initial, kZero) << spec.name;
    EXPECT_FALSE(spec.name.empty());
  }
}

}  // namespace
}  // namespace bddmin::workload
