#include "bdd/cube.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"

namespace bddmin {
namespace {

TEST(Cube, ConstantOneYieldsTheEmptyCube) {
  Manager mgr(3);
  std::size_t seen = 0;
  for_each_cube(mgr, kOne, 3, 0, [&](const CubeVec& cube) {
    ++seen;
    EXPECT_EQ(cube_literal_count(cube), 0u);
    return true;
  });
  EXPECT_EQ(seen, 1u);
}

TEST(Cube, ConstantZeroHasNoCubes) {
  Manager mgr(3);
  EXPECT_EQ(for_each_cube(mgr, kZero, 3, 0,
                          [](const CubeVec&) { return true; }),
            0u);
}

TEST(Cube, SingleLiteral) {
  Manager mgr(3);
  std::vector<CubeVec> cubes;
  for_each_cube(mgr, !mgr.var_edge(1), 3, 0, [&](const CubeVec& cube) {
    cubes.push_back(cube);
    return true;
  });
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0], (CubeVec{kAbsentLiteral, 0, kAbsentLiteral}));
}

TEST(Cube, CubesPartitionTheOnset) {
  Manager mgr(5);
  std::mt19937_64 rng(7);
  for (int round = 0; round < 25; ++round) {
    const std::uint64_t tt = rng() & tt_mask(5);
    const Edge f = from_tt(mgr, tt, 5);
    Edge cover = kZero;
    double count = 0;
    for_each_cube(mgr, f, 5, 0, [&](const CubeVec& cube) {
      const Edge e = cube_to_edge(mgr, cube);
      // BDD paths are disjoint by construction.
      EXPECT_TRUE(mgr.disjoint(cover, e));
      cover = mgr.or_(cover, e);
      count += std::ldexp(1.0, static_cast<int>(5 - cube_literal_count(cube)));
      return true;
    });
    EXPECT_EQ(cover, f);
    EXPECT_DOUBLE_EQ(count, static_cast<double>(std::popcount(tt)));
  }
}

TEST(Cube, MaxCubesTruncatesEnumeration) {
  Manager mgr(4);
  // x0 XOR x1 XOR x2 XOR x3 has 8 disjoint minterm paths.
  Edge f = kZero;
  for (unsigned v = 0; v < 4; ++v) f = mgr.xor_(f, mgr.var_edge(v));
  EXPECT_EQ(for_each_cube(mgr, f, 4, 0, [](const CubeVec&) { return true; }),
            8u);
  EXPECT_EQ(for_each_cube(mgr, f, 4, 3, [](const CubeVec&) { return true; }),
            3u);
}

TEST(Cube, VisitorCanAbort) {
  Manager mgr(4);
  Edge f = kZero;
  for (unsigned v = 0; v < 4; ++v) f = mgr.xor_(f, mgr.var_edge(v));
  std::size_t seen = 0;
  for_each_cube(mgr, f, 4, 0, [&](const CubeVec&) { return ++seen < 2; });
  EXPECT_EQ(seen, 2u);
}

TEST(Cube, CollectCubesImpliesFunction) {
  Manager mgr(4);
  std::mt19937_64 rng(11);
  const Edge f = from_tt(mgr, rng() & tt_mask(4), 4);
  for (const Edge cube : collect_cubes(mgr, f, 0)) {
    EXPECT_TRUE(mgr.leq(cube, f));
    EXPECT_TRUE(is_cube(mgr, cube));
  }
}

TEST(Cube, LargestCubeHasMinimalLiteralCount) {
  Manager mgr(5);
  std::mt19937_64 rng(21);
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t tt = rng() & tt_mask(5);
    if (tt == 0) continue;
    const Edge f = from_tt(mgr, tt, 5);
    const CubeVec big = largest_cube(mgr, f, 5);
    // It is a 1-path of f...
    EXPECT_TRUE(mgr.leq(cube_to_edge(mgr, big), f));
    // ...and no enumerated cube has fewer literals.
    std::size_t fewest = SIZE_MAX;
    for_each_cube(mgr, f, 5, 0, [&](const CubeVec& cube) {
      fewest = std::min(fewest, cube_literal_count(cube));
      return true;
    });
    EXPECT_EQ(cube_literal_count(big), fewest);
  }
}

TEST(Cube, LargestCubeOfConstantOneIsEmpty) {
  Manager mgr(3);
  EXPECT_EQ(cube_literal_count(largest_cube(mgr, kOne, 3)), 0u);
  // A single minterm function: the cube needs every decision level it
  // passes through (absent levels of the BDD stay absent).
  const Edge minterm = mgr.and_(
      mgr.var_edge(0), mgr.and_(!mgr.var_edge(1), mgr.var_edge(2)));
  EXPECT_EQ(largest_cube(mgr, minterm, 3), (CubeVec{1, 0, 1}));
}

TEST(Cube, CubeToEdgeRoundTripsLiterals) {
  Manager mgr(4);
  const CubeVec cube{1, kAbsentLiteral, 0, kAbsentLiteral};
  const Edge e = cube_to_edge(mgr, cube);
  EXPECT_EQ(e, mgr.and_(mgr.var_edge(0), !mgr.var_edge(2)));
  EXPECT_EQ(cube_literal_count(cube), 2u);
}

}  // namespace
}  // namespace bddmin
