#include "bdd/ops.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/truth_table.hpp"

namespace bddmin {
namespace {

class OpsFixture : public ::testing::Test {
 protected:
  Manager mgr{6};
  std::mt19937_64 rng{2024};

  Edge random_fn(unsigned n) { return from_tt(mgr, rng() & tt_mask(n), n); }
};

TEST_F(OpsFixture, CofactorAgainstTruthTable) {
  for (int round = 0; round < 30; ++round) {
    const std::uint64_t tt = rng() & tt_mask(4);
    const Edge f = from_tt(mgr, tt, 4);
    for (unsigned v = 0; v < 4; ++v) {
      for (const bool value : {false, true}) {
        const Edge cf = cofactor(mgr, f, v, value);
        std::vector<bool> assignment(6, false);
        for (unsigned m = 0; m < 16; ++m) {
          for (unsigned k = 0; k < 4; ++k) assignment[k] = (m >> k) & 1;
          assignment[v] = value;
          unsigned mm = m;
          if (value) mm |= 1u << v; else mm &= ~(1u << v);
          EXPECT_EQ(eval(mgr, cf, assignment), ((tt >> mm) & 1) != 0);
        }
        EXPECT_FALSE(depends_on(mgr, cf, v));
      }
    }
  }
}

TEST_F(OpsFixture, CofactorCubeMultipleLiterals) {
  const Edge x0 = mgr.var_edge(0);
  const Edge x2 = mgr.var_edge(2);
  const Edge f = mgr.ite(x0, x2, mgr.var_edge(1));
  const Edge cube = mgr.and_(x0, !x2);  // x0=1, x2=0
  EXPECT_EQ(cofactor_cube(mgr, f, cube), kZero);
}

TEST_F(OpsFixture, ExistsIsDisjunctionOfCofactors) {
  for (int round = 0; round < 30; ++round) {
    const Edge f = random_fn(5);
    for (unsigned v = 0; v < 5; ++v) {
      const Edge q = exists(mgr, f, mgr.var_edge(v));
      const Edge expect =
          mgr.or_(cofactor(mgr, f, v, true), cofactor(mgr, f, v, false));
      EXPECT_EQ(q, expect);
    }
  }
}

TEST_F(OpsFixture, ForallIsConjunctionOfCofactors) {
  for (int round = 0; round < 30; ++round) {
    const Edge f = random_fn(5);
    for (unsigned v = 0; v < 5; ++v) {
      const Edge q = forall(mgr, f, mgr.var_edge(v));
      const Edge expect =
          mgr.and_(cofactor(mgr, f, v, true), cofactor(mgr, f, v, false));
      EXPECT_EQ(q, expect);
    }
  }
}

TEST_F(OpsFixture, QuantifyMultipleVariables) {
  for (int round = 0; round < 20; ++round) {
    const Edge f = random_fn(5);
    const std::vector<std::uint32_t> vars{1, 3};
    const Edge cube = positive_cube(mgr, vars);
    Edge expect = f;
    expect = mgr.or_(cofactor(mgr, expect, 1, true), cofactor(mgr, expect, 1, false));
    expect = mgr.or_(cofactor(mgr, expect, 3, true), cofactor(mgr, expect, 3, false));
    EXPECT_EQ(exists(mgr, f, cube), expect);
  }
}

TEST_F(OpsFixture, AndExistsEqualsComposedOps) {
  for (int round = 0; round < 30; ++round) {
    const Edge f = random_fn(5);
    const Edge g = random_fn(5);
    const std::vector<std::uint32_t> vars{0, 2, 4};
    const Edge cube = positive_cube(mgr, vars);
    EXPECT_EQ(and_exists(mgr, f, g, cube), exists(mgr, mgr.and_(f, g), cube));
  }
}

TEST_F(OpsFixture, ComposeAgainstShannonExpansion) {
  for (int round = 0; round < 30; ++round) {
    const Edge f = random_fn(5);
    const Edge g = random_fn(5);
    for (unsigned v = 0; v < 5; ++v) {
      // f[v := g] == g·f|v=1 + !g·f|v=0
      const Edge expect = mgr.ite(g, cofactor(mgr, f, v, true),
                                  cofactor(mgr, f, v, false));
      EXPECT_EQ(compose(mgr, f, v, g), expect);
    }
  }
}

TEST_F(OpsFixture, VectorComposeSimultaneousSubstitution) {
  // Swap x0 and x1 in x0·!x1: sequential compose cannot do this without a
  // temporary; vector_compose must.
  const Edge x0 = mgr.var_edge(0);
  const Edge x1 = mgr.var_edge(1);
  const Edge f = mgr.and_(x0, !x1);
  const std::vector<Edge> map{x1, x0};
  EXPECT_EQ(vector_compose(mgr, f, map), mgr.and_(x1, !x0));
}

TEST_F(OpsFixture, SupportListsExactlyTheEssentialVariables) {
  const Edge x0 = mgr.var_edge(0);
  const Edge x3 = mgr.var_edge(3);
  const Edge f = mgr.xor_(x0, x3);
  EXPECT_EQ(support(mgr, f), (std::vector<std::uint32_t>{0, 3}));
  EXPECT_TRUE(support(mgr, kOne).empty());
  // x1 XOR x1 cancels; support must not report it.
  const Edge g = mgr.ite(mgr.var_edge(1), f, f);
  EXPECT_EQ(support(mgr, g), (std::vector<std::uint32_t>{0, 3}));
}

TEST_F(OpsFixture, SupportCubeIsPositiveConjunction) {
  const Edge f = mgr.ite(mgr.var_edge(1), mgr.var_edge(3), mgr.var_edge(5));
  const std::vector<std::uint32_t> expect{1, 3, 5};
  EXPECT_EQ(support_cube(mgr, f), positive_cube(mgr, expect));
  EXPECT_EQ(support_cube(mgr, kOne), kOne);
  EXPECT_TRUE(is_cube(mgr, support_cube(mgr, f)));
}

TEST_F(OpsFixture, QuantifyingOverEmptyCubeIsIdentity) {
  const Edge f = random_fn(5);
  EXPECT_EQ(exists(mgr, f, kOne), f);
  EXPECT_EQ(forall(mgr, f, kOne), f);
  EXPECT_EQ(and_exists(mgr, f, kOne, kOne), f);
}

TEST_F(OpsFixture, QuantifyingEverythingYieldsAConstant) {
  for (int round = 0; round < 10; ++round) {
    const Edge f = random_fn(6);
    const std::vector<std::uint32_t> all{0, 1, 2, 3, 4, 5};
    const Edge cube = positive_cube(mgr, all);
    EXPECT_EQ(exists(mgr, f, cube), f == kZero ? kZero : kOne);
    EXPECT_EQ(forall(mgr, f, cube), f == kOne ? kOne : kZero);
  }
}

TEST_F(OpsFixture, DependsOnMatchesSupport) {
  for (int round = 0; round < 20; ++round) {
    const Edge f = random_fn(6);
    const std::vector<std::uint32_t> sup = support(mgr, f);
    for (unsigned v = 0; v < 6; ++v) {
      const bool in_support =
          std::find(sup.begin(), sup.end(), v) != sup.end();
      EXPECT_EQ(depends_on(mgr, f, v), in_support);
    }
  }
}

TEST_F(OpsFixture, SatCountMatchesPopcount) {
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t tt = rng() & tt_mask(6);
    const Edge f = from_tt(mgr, tt, 6);
    EXPECT_DOUBLE_EQ(sat_count(mgr, f, 6),
                     static_cast<double>(std::popcount(tt)));
  }
  EXPECT_DOUBLE_EQ(sat_count(mgr, kOne, 6), 64.0);
  EXPECT_DOUBLE_EQ(sat_count(mgr, kZero, 6), 0.0);
}

TEST_F(OpsFixture, SatFractionIsScaleFree) {
  const Edge x0 = mgr.var_edge(0);
  EXPECT_DOUBLE_EQ(sat_fraction(mgr, x0), 0.5);
  EXPECT_DOUBLE_EQ(sat_fraction(mgr, mgr.and_(x0, mgr.var_edge(5))), 0.25);
  EXPECT_DOUBLE_EQ(sat_fraction(mgr, kOne), 1.0);
}

TEST_F(OpsFixture, CountNodesIncludesTerminal) {
  EXPECT_EQ(count_nodes(mgr, kOne), 1u);
  EXPECT_EQ(count_nodes(mgr, kZero), 1u);
  EXPECT_EQ(count_nodes(mgr, mgr.var_edge(0)), 2u);
  const Edge f = mgr.xor_(mgr.var_edge(0), mgr.var_edge(1));
  EXPECT_EQ(count_nodes(mgr, f), 3u);  // x0 node, one shared x1 node, terminal
}

TEST_F(OpsFixture, CountNodesForestSharesCommonSubgraphs) {
  const Edge x0 = mgr.var_edge(0);
  const Edge x1 = mgr.var_edge(1);
  const std::vector<Edge> roots{mgr.and_(x0, x1), mgr.or_(x0, x1)};
  // and: node(x0)-node(x1); or: node(x0)-node(x1) shared complement. With
  // complement edges both functions share the x1 node.
  EXPECT_LE(count_nodes(mgr, roots),
            count_nodes(mgr, roots[0]) + count_nodes(mgr, roots[1]) - 1);
}

TEST_F(OpsFixture, CountNodesBelowLevel) {
  // Chain x0·x1·x2: nodes at vars 0,1,2 plus terminal.
  const Edge f =
      mgr.and_(mgr.var_edge(0), mgr.and_(mgr.var_edge(1), mgr.var_edge(2)));
  EXPECT_EQ(count_nodes(mgr, f), 4u);
  EXPECT_EQ(count_nodes_below(mgr, f, 0), 3u);  // x1, x2, terminal
  EXPECT_EQ(count_nodes_below(mgr, f, 1), 2u);
  EXPECT_EQ(count_nodes_below(mgr, f, 2), 1u);
}

TEST_F(OpsFixture, CubeOfBuildsConjunction) {
  const std::vector<std::uint32_t> vars{4, 1};
  const std::vector<bool> phase{true, false};
  const Edge cube = cube_of(mgr, vars, phase);
  EXPECT_EQ(cube, mgr.and_(mgr.var_edge(4), !mgr.var_edge(1)));
  EXPECT_TRUE(is_cube(mgr, cube));
}

TEST_F(OpsFixture, IsCubeRecognizesCubesOnly) {
  EXPECT_TRUE(is_cube(mgr, kOne));
  EXPECT_FALSE(is_cube(mgr, kZero));
  EXPECT_TRUE(is_cube(mgr, mgr.var_edge(2)));
  EXPECT_TRUE(is_cube(mgr, !mgr.var_edge(2)));
  EXPECT_FALSE(is_cube(mgr, mgr.xor_(mgr.var_edge(0), mgr.var_edge(1))));
  EXPECT_FALSE(is_cube(mgr, mgr.or_(mgr.var_edge(0), mgr.var_edge(1))));
  EXPECT_TRUE(is_cube(mgr, mgr.and_(mgr.var_edge(0), !mgr.var_edge(3))));
}

TEST_F(OpsFixture, EvalWalksAssignment) {
  const Edge f = mgr.ite(mgr.var_edge(0), mgr.var_edge(1), !mgr.var_edge(2));
  EXPECT_TRUE(eval(mgr, f, {true, true, false, false, false, false}));
  EXPECT_FALSE(eval(mgr, f, {true, false, false, false, false, false}));
  EXPECT_TRUE(eval(mgr, f, {false, false, false, false, false, false}));
  EXPECT_FALSE(eval(mgr, f, {false, false, true, false, false, false}));
}

}  // namespace
}  // namespace bddmin
