#include "fsm/image.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/ops.hpp"
#include "workload/generators.hpp"

namespace bddmin::fsm {
namespace {

/// A 2-bit counter with enable laid out as: input 0, state {1, 3},
/// next {2, 4}.
struct CounterRig {
  Manager mgr{5};
  SymbolicFsm sym;
  std::vector<std::uint32_t> next_vars{2, 4};

  CounterRig() {
    const workload::MachineSpec spec = workload::make_counter(2);
    sym = spec.build(mgr, std::vector<std::uint32_t>{0},
                     std::vector<std::uint32_t>{1, 3});
  }

  Edge state(unsigned index) {
    return state_code(mgr, sym.state_vars, index);
  }
};

TEST(Image, RelationalCounterStep) {
  CounterRig rig;
  ImageComputer imager(rig.mgr, rig.sym, rig.next_vars,
                       ImageMethod::kRelational);
  // From state 0, one step reaches {0 (enable off), 1 (enable on)}.
  const Edge img = imager.image(rig.state(0));
  EXPECT_EQ(img, rig.mgr.or_(rig.state(0), rig.state(1)));
  // From state 3, wraps to 0.
  const Edge img3 = imager.image(rig.state(3));
  EXPECT_EQ(img3, rig.mgr.or_(rig.state(3), rig.state(0)));
}

TEST(Image, FunctionalCounterStep) {
  CounterRig rig;
  ImageComputer imager(rig.mgr, rig.sym, rig.next_vars,
                       ImageMethod::kFunctional);
  const Edge img = imager.image(rig.state(1));
  EXPECT_EQ(img, rig.mgr.or_(rig.state(1), rig.state(2)));
}

TEST(Image, ClusteredCounterStepWithWideState) {
  // Wide machine so several clusters actually form.
  const workload::MachineSpec spec = workload::make_accumulator(8, 4);
  Manager mgr(4 + 16);
  std::vector<std::uint32_t> in{0, 1, 2, 3};
  std::vector<std::uint32_t> st;
  std::vector<std::uint32_t> next;
  for (unsigned k = 0; k < 8; ++k) {
    st.push_back(4 + 2 * k);
    next.push_back(4 + 2 * k + 1);
  }
  const SymbolicFsm sym = spec.build(mgr, in, st);
  ImageComputer relational(mgr, sym, next, ImageMethod::kRelational);
  ImageComputer clustered(mgr, sym, next, ImageMethod::kClustered);
  const Edge s0 = state_code(mgr, st, 0);
  EXPECT_EQ(clustered.image(s0), relational.image(s0));
  const Edge some = mgr.or_(state_code(mgr, st, 5), state_code(mgr, st, 250));
  EXPECT_EQ(clustered.image(some), relational.image(some));
}

TEST(Image, EmptySetMapsToEmpty) {
  CounterRig rig;
  for (const ImageMethod method :
       {ImageMethod::kRelational, ImageMethod::kClustered,
        ImageMethod::kFunctional}) {
    ImageComputer imager(rig.mgr, rig.sym, rig.next_vars, method);
    EXPECT_EQ(imager.image(kZero), kZero);
  }
}

TEST(Image, MethodsAgreeOnRandomMachines) {
  // Cross-check the Coudert constrain-based range computation against the
  // relational product on random Mealy machines.
  for (const std::uint64_t seed : {11ull, 22ull, 33ull}) {
    const workload::MachineSpec spec = workload::make_random_mealy(6, 2, 1, seed);
    Manager mgr(2 + 2 * spec.num_state_bits);
    std::vector<std::uint32_t> in{0, 1};
    std::vector<std::uint32_t> st;
    std::vector<std::uint32_t> next;
    for (unsigned k = 0; k < spec.num_state_bits; ++k) {
      st.push_back(2 + 2 * k);
      next.push_back(2 + 2 * k + 1);
    }
    const SymbolicFsm sym = spec.build(mgr, in, st);
    ImageComputer relational(mgr, sym, next, ImageMethod::kRelational);
    ImageComputer clustered(mgr, sym, next, ImageMethod::kClustered);
    ImageComputer functional(mgr, sym, next, ImageMethod::kFunctional);
    std::mt19937_64 rng(seed);
    for (int round = 0; round < 10; ++round) {
      // Random state subset.
      Edge s = kZero;
      for (unsigned idx = 0; idx < (1u << spec.num_state_bits); ++idx) {
        if (rng() & 1) s = mgr.or_(s, state_code(mgr, st, idx));
      }
      const Edge reference = relational.image(s);
      EXPECT_EQ(reference, functional.image(s)) << "seed " << seed;
      EXPECT_EQ(reference, clustered.image(s)) << "seed " << seed;
    }
  }
}

TEST(Image, PreimageIsTheForwardDual) {
  // s in pre({t})  <=>  t in img({s}), checked state by state.
  const workload::MachineSpec spec = workload::make_random_mealy(8, 2, 1, 55);
  Manager mgr(2 + 2 * spec.num_state_bits);
  std::vector<std::uint32_t> in{0, 1};
  std::vector<std::uint32_t> st;
  std::vector<std::uint32_t> next;
  for (unsigned k = 0; k < spec.num_state_bits; ++k) {
    st.push_back(2 + 2 * k);
    next.push_back(2 + 2 * k + 1);
  }
  const SymbolicFsm sym = spec.build(mgr, in, st);
  ImageComputer imager(mgr, sym, next, ImageMethod::kRelational);
  const unsigned n = 1u << spec.num_state_bits;
  for (unsigned s = 0; s < n; ++s) {
    const Edge img = imager.image(state_code(mgr, st, s));
    for (unsigned t = 0; t < n; ++t) {
      const Edge pre = imager.preimage(state_code(mgr, st, t));
      const bool forward = mgr.leq(state_code(mgr, st, t), img);
      const bool backward = mgr.leq(state_code(mgr, st, s), pre);
      EXPECT_EQ(forward, backward) << s << " -> " << t;
    }
  }
}

TEST(Image, PreimageOfCounter) {
  CounterRig rig;
  ImageComputer imager(rig.mgr, rig.sym, rig.next_vars,
                       ImageMethod::kRelational);
  // Predecessors of {2}: {1} (enable on) and {2} (enable off).
  EXPECT_EQ(imager.preimage(rig.state(2)),
            rig.mgr.or_(rig.state(1), rig.state(2)));
  EXPECT_EQ(imager.preimage(kZero), kZero);
}

TEST(Image, MonotoneInTheStateSet) {
  CounterRig rig;
  ImageComputer imager(rig.mgr, rig.sym, rig.next_vars,
                       ImageMethod::kRelational);
  const Edge small = rig.state(0);
  const Edge big = rig.mgr.or_(rig.state(0), rig.state(2));
  EXPECT_TRUE(rig.mgr.leq(imager.image(small), imager.image(big)));
}

TEST(Image, SurvivesGarbageCollection) {
  CounterRig rig;
  ImageComputer imager(rig.mgr, rig.sym, rig.next_vars,
                       ImageMethod::kRelational);
  const Bdd pinned(rig.mgr, rig.state(0));
  const Edge before = imager.image(pinned.edge());
  const Bdd keep(rig.mgr, before);
  rig.mgr.garbage_collect();
  EXPECT_EQ(imager.image(pinned.edge()), before);
}

}  // namespace
}  // namespace bddmin::fsm
