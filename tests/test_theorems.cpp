/// Optimality results of the paper, verified against the exhaustive exact
/// minimizer: Theorem 7 (constrain exact on cube care sets), the Touati
/// reduction of constrain to a Shannon cofactor on cubes, Proposition 10
/// (osm FMM via DMG sinks is minimum), Lemma 14, Theorem 15's cover
/// validity, and Theorem 12 (osm at a level preserves the optimum below).
#include <gtest/gtest.h>

#include <random>
#include <unordered_set>

#include "bdd/cube.hpp"
#include "bdd/ops.hpp"
#include "bdd/truth_table.hpp"
#include "minimize/exact.hpp"
#include "minimize/level.hpp"
#include "minimize/sibling.hpp"

namespace bddmin::minimize {
namespace {

Edge random_cube(Manager& mgr, unsigned n, std::mt19937_64& rng) {
  Edge cube = kOne;
  for (unsigned v = 0; v < n; ++v) {
    switch (rng() % 3) {
      case 0: cube = mgr.and_(cube, mgr.var_edge(v)); break;
      case 1: cube = mgr.and_(cube, mgr.nvar_edge(v)); break;
      default: break;
    }
  }
  return cube;
}

class Theorem7 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem7, ConstrainIsOptimalWhenCareIsACube) {
  Manager mgr(4);
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 25; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(4), 4);
    const Edge cube = random_cube(mgr, 4, rng);
    const Edge g = constrain(mgr, f, cube);
    ASSERT_TRUE(is_cover(mgr, g, {f, cube}));
    const auto exact = exact_minimum(mgr, f, cube, 4);
    ASSERT_TRUE(exact.has_value());
    EXPECT_EQ(count_nodes(mgr, g), exact->size);
  }
}

TEST_P(Theorem7, AllSiblingHeuristicsOptimalWhenCareIsACube) {
  // "The theorem for the other heuristics can be argued similarly."
  Manager mgr(4);
  std::mt19937_64 rng(GetParam() + 17);
  using Fn = Edge (*)(Manager&, Edge, Edge);
  const Fn heuristics[] = {constrain, restrict_dc, osm_td, osm_nv,
                           osm_cp,    osm_bt,      tsm_td, tsm_cp};
  for (int round = 0; round < 12; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(4), 4);
    const Edge cube = random_cube(mgr, 4, rng);
    const auto exact = exact_minimum(mgr, f, cube, 4);
    ASSERT_TRUE(exact.has_value());
    for (const Fn h : heuristics) {
      EXPECT_EQ(count_nodes(mgr, h(mgr, f, cube)), exact->size);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem7, ::testing::Values(3, 5, 7));

TEST(Theorem7, ConstrainOnCubeIsShannonCofactorExpansion) {
  // Touati et al.: with a cube care set, constrain(f, p) equals f
  // cofactored by p (the don't-care minterms inherit the nearest care
  // value along the cube's literals).
  Manager mgr(5);
  std::mt19937_64 rng(23);
  for (int round = 0; round < 40; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(5), 5);
    const Edge cube = random_cube(mgr, 5, rng);
    EXPECT_EQ(constrain(mgr, f, cube), cofactor_cube(mgr, f, cube));
  }
}

TEST(Theorem7, HeuristicsNeverBeatExactMinimum) {
  Manager mgr(4);
  std::mt19937_64 rng(31);
  using Fn = Edge (*)(Manager&, Edge, Edge);
  const Fn heuristics[] = {constrain, restrict_dc, osm_td, osm_nv,
                           osm_cp,    osm_bt,      tsm_td, tsm_cp};
  for (int round = 0; round < 15; ++round) {
    const Edge f = from_tt(mgr, rng() & tt_mask(4), 4);
    std::uint64_t c_tt = rng() & rng() & tt_mask(4);  // leave room for DCs
    if (c_tt == 0) c_tt = 1;
    const Edge c = from_tt(mgr, c_tt, 4);
    const auto exact = exact_minimum(mgr, f, c, 4);
    ASSERT_TRUE(exact.has_value());
    for (const Fn h : heuristics) {
      EXPECT_GE(count_nodes(mgr, h(mgr, f, c)), exact->size);
    }
    const Edge lv = opt_lv(mgr, f, c);
    EXPECT_TRUE(is_cover(mgr, lv, {f, c}));
    EXPECT_GE(count_nodes(mgr, lv), exact->size);
  }
}

TEST(Proposition10, OsmFmmSinkCountIsMinimum) {
  // Brute-force reference: the minimum number of i-covers for a set under
  // osm equals the number of DMG sinks.
  Manager mgr(3);
  std::mt19937_64 rng(41);
  for (int round = 0; round < 30; ++round) {
    std::vector<IncSpec> specs;
    std::unordered_set<std::uint64_t> canon;
    for (int k = 0; k < 5; ++k) {
      const Edge f = from_tt(mgr, rng() & tt_mask(3), 3);
      const Edge c = from_tt(mgr, rng() & tt_mask(3), 3);
      // Keep only distinct incompletely specified functions (Prop 10's
      // premise).
      const std::uint64_t key =
          (std::uint64_t{mgr.and_(f, c).bits} << 32) | c.bits;
      if (canon.insert(key).second) specs.push_back({f, c});
    }
    const std::vector<std::size_t> rep = fmm_osm(mgr, specs);
    std::unordered_set<std::size_t> sinks(rep.begin(), rep.end());
    // Each representative i-covers its vertex.
    for (std::size_t j = 0; j < specs.size(); ++j) {
      EXPECT_TRUE(is_icover(mgr, specs[rep[j]], specs[j]));
    }
    // Minimality: a vertex with no outgoing osm edge can never be covered
    // by a representative other than itself, so #sinks is forced.
    std::size_t forced = 0;
    for (std::size_t j = 0; j < specs.size(); ++j) {
      bool has_out = false;
      for (std::size_t k = 0; k < specs.size(); ++k) {
        if (j != k && matches(mgr, Criterion::kOsm, specs[j], specs[k])) {
          has_out = true;
        }
      }
      forced += !has_out;
    }
    EXPECT_EQ(sinks.size(), forced);
  }
}

TEST(Lemma14, PairwiseTsmIffCommonCoverExists) {
  Manager mgr(3);
  std::mt19937_64 rng(47);
  for (int round = 0; round < 40; ++round) {
    std::vector<IncSpec> specs;
    for (int k = 0; k < 3; ++k) {
      specs.push_back({from_tt(mgr, rng() & tt_mask(3), 3),
                       from_tt(mgr, rng() & tt_mask(3), 3)});
    }
    bool pairwise = true;
    for (std::size_t j = 0; j < specs.size(); ++j) {
      for (std::size_t k = j + 1; k < specs.size(); ++k) {
        pairwise &= matches(mgr, Criterion::kTsm, specs[j], specs[k]);
      }
    }
    bool common = false;
    for (std::uint64_t g_tt = 0; g_tt < 256 && !common; ++g_tt) {
      const Edge g = from_tt(mgr, g_tt, 3);
      common = is_cover(mgr, g, specs[0]) && is_cover(mgr, g, specs[1]) &&
               is_cover(mgr, g, specs[2]);
    }
    EXPECT_EQ(pairwise, common);
  }
}

TEST(Theorem15, CliqueMergeYieldsValidCommonICover) {
  Manager mgr(4);
  std::mt19937_64 rng(53);
  for (int round = 0; round < 25; ++round) {
    std::vector<IncSpec> specs;
    for (int k = 0; k < 6; ++k) {
      specs.push_back({from_tt(mgr, rng() & tt_mask(4), 4),
                       from_tt(mgr, rng() & tt_mask(4), 4)});
    }
    const CliqueCover cover = fmm_tsm(mgr, specs, {}, LevelOptions{});
    EXPECT_EQ(cover.clique_of.size(), specs.size());
    for (const auto& clique : cover.cliques) {
      const IncSpec merged = merge_clique(mgr, specs, clique);
      for (const std::size_t j : clique) {
        EXPECT_TRUE(is_icover(mgr, merged, specs[j]));
      }
    }
  }
}

TEST(Theorem12, OsmAtLevelPreservesOptimumBelow) {
  // After osm matching at level i, some cover of the result attains the
  // minimum possible node count below level i.  Covers are enumerated as
  // onset + subset-of-DC-minterms on truth tables.
  Manager mgr(4);
  std::mt19937_64 rng(61);
  for (int round = 0; round < 12; ++round) {
    const std::uint64_t f_tt = rng() & tt_mask(4);
    std::uint64_t c_tt = rng() | rng();  // dense care: few DC bits
    c_tt &= tt_mask(4);
    if (c_tt == 0) c_tt = 1;
    const Edge f = from_tt(mgr, f_tt, 4);
    const Edge c = from_tt(mgr, c_tt, 4);
    const auto min_below = [&](std::uint64_t base, std::uint64_t dc,
                               std::uint32_t level) {
      std::vector<unsigned> dc_bits;
      for (unsigned m = 0; m < 16; ++m) {
        if ((dc >> m) & 1) dc_bits.push_back(m);
      }
      std::size_t best = SIZE_MAX;
      for (std::uint64_t choice = 0; choice < (1ull << dc_bits.size());
           ++choice) {
        std::uint64_t g_tt = base;
        for (std::size_t b = 0; b < dc_bits.size(); ++b) {
          if ((choice >> b) & 1) g_tt |= 1ull << dc_bits[b];
        }
        const Edge g = from_tt(mgr, g_tt, 4);
        best = std::min(best, count_nodes_below(mgr, g, level));
      }
      return best;
    };
    for (std::uint32_t level = 0; level < 3; ++level) {
      const IncSpec after =
          minimize_at_level(mgr, Criterion::kOsm, level, {}, {f, c});
      ASSERT_TRUE(is_icover(mgr, after, {f, c}));
      const std::uint64_t af_tt = to_tt(mgr, after.f, 4);
      const std::uint64_t ac_tt = to_tt(mgr, after.c, 4);
      const std::size_t best_orig =
          min_below(f_tt & c_tt, ~c_tt & tt_mask(4), level);
      const std::size_t best_after =
          min_below(af_tt & ac_tt, ~ac_tt & tt_mask(4), level);
      EXPECT_EQ(best_after, best_orig) << "level " << level;
    }
  }
}

}  // namespace
}  // namespace bddmin::minimize
