#include "harness/intercept.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <random>
#include <sstream>

#include "bdd/truth_table.hpp"
#include "harness/csv.hpp"
#include "harness/render.hpp"
#include "harness/stats.hpp"
#include "workload/instances.hpp"

namespace bddmin::harness {
namespace {

/// Feed raw instances straight into an interceptor hook.
std::vector<CallRecord> run_instances(Interceptor& interceptor,
                                      unsigned num_vars, unsigned count,
                                      double density, std::uint64_t seed) {
  Manager mgr(num_vars);
  const fsm::MinimizeHook hook = interceptor.hook();
  std::mt19937_64 rng(seed);
  for (unsigned i = 0; i < count; ++i) {
    const minimize::IncSpec spec =
        workload::random_instance(mgr, num_vars, density, rng);
    const Bdd f(mgr, spec.f);
    const Bdd c(mgr, spec.c);
    (void)hook(mgr, f.edge(), c.edge());
  }
  return interceptor.records();
}

TEST(Interceptor, RecordsOneEntryPerUnfilteredCall) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  const auto records = run_instances(interceptor, 8, 12, 0.5, 3);
  EXPECT_EQ(records.size() + interceptor.filtered_calls(),
            interceptor.total_calls());
  EXPECT_GT(records.size(), 0u);
  for (const CallRecord& r : records) {
    EXPECT_EQ(r.outcomes.size(), interceptor.names().size());
    EXPECT_GT(r.f_size, 0u);
    EXPECT_GT(r.min_size, 0u);
    EXPECT_LE(r.lower_bound, r.min_size);
    for (const HeuristicOutcome& o : r.outcomes) {
      EXPECT_GE(o.size, r.min_size);
    }
  }
}

TEST(Interceptor, FiltersTrivialCalls) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  Manager mgr(4);
  const fsm::MinimizeHook hook = interceptor.hook();
  const Edge f = mgr.xor_(mgr.var_edge(0), mgr.var_edge(1));
  (void)hook(mgr, f, kOne);                                 // c == 1
  (void)hook(mgr, f, mgr.var_edge(2));                      // c is a cube
  (void)hook(mgr, f, mgr.and_(f, mgr.var_edge(2)));         // c <= f (and cube)
  EXPECT_EQ(interceptor.filtered_calls(), 3u);
  EXPECT_TRUE(interceptor.records().empty());
}

TEST(Interceptor, HookReturnsConstrainResult) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  Manager mgr(6);
  const fsm::MinimizeHook hook = interceptor.hook();
  std::mt19937_64 rng(5);
  const Edge f = from_tt(mgr, rng() & tt_mask(6), 6);
  const Edge c = from_tt(mgr, rng() | (1ull << 7), 6);
  const Bdd fp(mgr, f);
  const Bdd cp(mgr, c);
  const Edge returned = hook(mgr, f, c);
  EXPECT_EQ(returned, minimize::constrain(mgr, f, c));
}

TEST(Interceptor, MinIsTheBestOutcome) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  const auto records = run_instances(interceptor, 8, 8, 0.3, 9);
  for (const CallRecord& r : records) {
    std::size_t best = SIZE_MAX;
    for (const HeuristicOutcome& o : r.outcomes) best = std::min(best, o.size);
    EXPECT_EQ(best, r.min_size);
  }
}

TEST(Stats, BucketsPartitionTheRecords) {
  Interceptor low_i(minimize::all_heuristics(), {});
  run_instances(low_i, 10, 6, 0.02, 11);
  Interceptor high_i(minimize::all_heuristics(), {});
  run_instances(high_i, 10, 6, 0.99, 13);
  std::vector<CallRecord> records = low_i.records();
  const auto& more = high_i.records();
  records.insert(records.end(), more.begin(), more.end());
  const Table3 table = aggregate_table3(low_i.names(), records);
  EXPECT_EQ(table.all.calls,
            table.low.calls + table.mid.calls + table.high.calls);
  EXPECT_EQ(table.all.calls, records.size());
  // Totals add up across buckets.
  for (std::size_t h = 0; h < table.names.size(); ++h) {
    EXPECT_EQ(table.all.total_size[h], table.low.total_size[h] +
                                           table.mid.total_size[h] +
                                           table.high.total_size[h]);
  }
}

TEST(Stats, EmptyMidBucketRendersWithoutNans) {
  // All calls fall in the <5% / >95% buckets, so mid has zero calls and a
  // zero total_min; pct_of_min must stay finite (and zero) instead of
  // dividing by zero, and the rendered table must not contain "nan".
  const std::vector<std::string> names = {"alpha", "beta"};
  std::vector<CallRecord> records;
  for (const double onset : {0.01, 0.99}) {
    CallRecord r;
    r.f_size = 10;
    r.c_onset = onset;
    r.outcomes = {{4, 0.0}, {6, 0.0}};
    r.min_size = 4;
    r.lower_bound = 2;
    records.push_back(r);
  }
  const Table3 table = aggregate_table3(names, records);
  EXPECT_EQ(table.mid.calls, 0u);
  EXPECT_EQ(table.mid.total_min, 0u);
  for (std::size_t h = 0; h < names.size(); ++h) {
    const double pct = table.mid.pct_of_min(h);
    EXPECT_TRUE(std::isfinite(pct)) << names[h];
    EXPECT_EQ(pct, 0.0) << names[h];
  }
  const std::string text = render_table3(table);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
}

TEST(Stats, RanksAreConsistentWithTotals) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  const auto records = run_instances(interceptor, 9, 10, 0.3, 17);
  const Table3 table = aggregate_table3(interceptor.names(), records);
  const BucketStats& b = table.all;
  for (std::size_t i = 0; i < b.total_size.size(); ++i) {
    for (std::size_t j = 0; j < b.total_size.size(); ++j) {
      if (b.total_size[i] < b.total_size[j]) {
        EXPECT_LT(b.rank[i], b.rank[j]);
      } else if (b.total_size[i] == b.total_size[j]) {
        EXPECT_EQ(b.rank[i], b.rank[j]);
      }
    }
  }
  // min is never above any heuristic total.
  for (const std::size_t total : b.total_size) {
    EXPECT_GE(total, b.total_min);
  }
}

TEST(Stats, HeadToHeadDiagonalIsZeroAndMinNeverLoses) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  const auto records = run_instances(interceptor, 9, 10, 0.3, 19);
  const HeadToHead matrix = head_to_head(interceptor.names(), records);
  const std::size_t n = matrix.names.size();
  const std::size_t min_idx = n - 2;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(matrix.pct_smaller[i][i], 0.0);
    if (i < min_idx) {
      EXPECT_EQ(matrix.pct_smaller[i][min_idx], 0.0)
          << matrix.names[i] << " beat min";
    }
  }
}

TEST(Stats, RobustnessCurveIsMonotoneAndEndsAtOrBelow100) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  const auto records = run_instances(interceptor, 9, 10, 0.3, 23);
  for (std::size_t h = 0; h < interceptor.names().size(); ++h) {
    const std::vector<double> curve = robustness_curve(records, h, 10.0, 100.0);
    for (std::size_t s = 1; s < curve.size(); ++s) {
      EXPECT_GE(curve[s], curve[s - 1]);
    }
    EXPECT_LE(curve.back(), 100.0 + 1e-9);
  }
}

TEST(Stats, LowerBoundHitRateWithinRange) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  const auto records = run_instances(interceptor, 9, 10, 0.3, 29);
  for (std::size_t h = 0; h < interceptor.names().size(); ++h) {
    const double rate = lower_bound_hit_rate(records, h);
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 100.0);
  }
}

TEST(Render, TablesContainHeaderAndHeuristicNames) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  const auto records = run_instances(interceptor, 8, 6, 0.3, 31);
  const Table3 table = aggregate_table3(interceptor.names(), records);
  const std::string text = render_table3(table);
  EXPECT_NE(text.find("Table 3"), std::string::npos);
  EXPECT_NE(text.find("const"), std::string::npos);
  EXPECT_NE(text.find("opt_lv"), std::string::npos);
  EXPECT_NE(text.find("low_bd"), std::string::npos);

  const HeadToHead matrix = head_to_head(interceptor.names(), records);
  const std::string h2h = render_head_to_head(
      matrix, {"f_orig", "const", "restr", "osm_bt", "tsm_td", "opt_lv", "min"});
  EXPECT_NE(h2h.find("Table 4"), std::string::npos);
  EXPECT_NE(h2h.find("osm_bt"), std::string::npos);

  const std::string fig = render_robustness(
      interceptor.names(), records, {"f_orig", "const", "restr", "tsm_td"});
  EXPECT_NE(fig.find("Figure 3"), std::string::npos);
}

TEST(Csv, ExportsOneRowPerRecordWithAllColumns) {
  Interceptor interceptor(minimize::all_heuristics(), {});
  const auto records = run_instances(interceptor, 8, 5, 0.3, 37);
  const std::string csv = records_to_csv(interceptor.names(), records);
  // Header + one line per record.
  std::size_t lines = 0;
  for (const char ch : csv) lines += ch == '\n';
  EXPECT_EQ(lines, records.size() + 1);
  EXPECT_NE(csv.find("size_const"), std::string::npos);
  EXPECT_NE(csv.find("sec_opt_lv"), std::string::npos);
  EXPECT_NE(csv.find("lower_bound"), std::string::npos);
  // Column count is stable across rows.
  const std::size_t header_commas =
      static_cast<std::size_t>(std::count(csv.begin(), csv.begin() +
                                          static_cast<std::ptrdiff_t>(csv.find('\n')), ','));
  std::istringstream in(csv);
  std::string line;
  std::getline(in, line);
  while (std::getline(in, line)) {
    EXPECT_EQ(static_cast<std::size_t>(std::count(line.begin(), line.end(), ',')),
              header_commas);
  }
}

TEST(Csv, WriteTextFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "bddmin_csv_test.csv";
  ASSERT_TRUE(write_text_file(path, "a,b\n1,2\n"));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,b\n1,2\n");
}

TEST(Render, GenericTableAlignsColumns) {
  const std::string text =
      render_table({{"a", "bb"}, {"ccc", "d"}, {"e", "ff"}});
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

}  // namespace
}  // namespace bddmin::harness
