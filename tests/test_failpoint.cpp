/// \file test_failpoint.cpp
/// \brief Failpoint registry semantics (modes, arming grammar, env
/// arming) and the batch engine's resilience around injected faults:
/// retry/backoff accounting, watchdog quarantine, audit-clean recovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/failpoint.hpp"
#include "bdd/truth_table.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"
#include "harness/env.hpp"

namespace bddmin {
namespace {

using analysis::FailPointConfig;
using analysis::FailPointMode;
using analysis::FailPointRegistry;
using analysis::failpoints;

/// Every test leaves the process-global registry clean — armed points
/// would leak into unrelated tests in this binary.
class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    failpoints().disarm_all();
    unsetenv("BDDMIN_FAILPOINTS");
  }
  void TearDown() override {
    failpoints().disarm_all();
    unsetenv("BDDMIN_FAILPOINTS");
  }
};

TEST_F(FailPointTest, CatalogIsStableAndSitesResolve) {
  const auto& catalog = FailPointRegistry::catalog();
  EXPECT_EQ(catalog.size(), 11u);
  for (const auto& entry : catalog) {
    // site() must resolve every cataloged name to a stable instance.
    analysis::FailPoint& a = failpoints().site(entry.name);
    analysis::FailPoint& b = failpoints().site(entry.name);
    EXPECT_EQ(&a, &b) << entry.name;
  }
}

TEST_F(FailPointTest, DisarmedPollNeverFires) {
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(failpoints().evaluate("gc_oom"));
  }
}

TEST_F(FailPointTest, OnceFiresExactlyOnceThenDisarms) {
  FailPointConfig cfg;
  cfg.mode = FailPointMode::kOnce;
  failpoints().arm("gc_oom", cfg);
  EXPECT_TRUE(failpoints().evaluate("gc_oom"));
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(failpoints().evaluate("gc_oom"));
  }
}

TEST_F(FailPointTest, NthFiresOnTheNthEvaluation) {
  FailPointConfig cfg;
  cfg.mode = FailPointMode::kNth;
  cfg.nth = 3;
  failpoints().arm("gc_oom", cfg);
  EXPECT_FALSE(failpoints().evaluate("gc_oom"));
  EXPECT_FALSE(failpoints().evaluate("gc_oom"));
  EXPECT_TRUE(failpoints().evaluate("gc_oom"));
  EXPECT_FALSE(failpoints().evaluate("gc_oom"));  // disarmed after firing
}

TEST_F(FailPointTest, RandomIsSeededAndDeterministic) {
  const auto draw_sequence = [](std::uint64_t seed) {
    FailPointConfig cfg;
    cfg.mode = FailPointMode::kRandom;
    cfg.probability = 0.5;
    cfg.seed = seed;
    failpoints().arm("gc_oom", cfg);
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      fires.push_back(static_cast<bool>(failpoints().evaluate("gc_oom")));
    }
    return fires;
  };
  const std::vector<bool> a = draw_sequence(42);
  const std::vector<bool> b = draw_sequence(42);
  EXPECT_EQ(a, b);
  // p = 0.5 over 64 draws: all-equal outcomes are astronomically unlikely,
  // and a degenerate generator would produce exactly that.
  bool saw_fire = false;
  bool saw_miss = false;
  for (const bool f : a) (f ? saw_fire : saw_miss) = true;
  EXPECT_TRUE(saw_fire);
  EXPECT_TRUE(saw_miss);
  // Random mode stays armed until disarmed.
  FailPointConfig always;
  always.mode = FailPointMode::kRandom;
  always.probability = 1.0;
  always.seed = 9;
  failpoints().arm("gc_oom", always);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(failpoints().evaluate("gc_oom"));
  }
}

TEST_F(FailPointTest, HitCarriesTheDefaultOrOverriddenPayload) {
  FailPointConfig cfg;
  cfg.mode = FailPointMode::kOnce;
  failpoints().arm("minimize_hang", cfg);  // catalog default payload: 200
  EXPECT_EQ(failpoints().evaluate("minimize_hang").value, 200u);
  cfg.value = 7;
  failpoints().arm("minimize_hang", cfg);
  EXPECT_EQ(failpoints().evaluate("minimize_hang").value, 7u);
}

TEST_F(FailPointTest, ArmFromSpecGrammar) {
  failpoints().arm_from_spec("gc_oom:once");
  EXPECT_TRUE(failpoints().evaluate("gc_oom"));
  failpoints().arm_from_spec("gc_oom:nth:2");
  EXPECT_FALSE(failpoints().evaluate("gc_oom"));
  EXPECT_TRUE(failpoints().evaluate("gc_oom"));
  failpoints().arm_from_spec("gc_oom:random:1.0:5");
  EXPECT_TRUE(failpoints().evaluate("gc_oom"));
  failpoints().arm_from_spec("gc_oom:off");
  EXPECT_FALSE(failpoints().evaluate("gc_oom"));

  EXPECT_THROW(failpoints().arm_from_spec("no_such_point:once"),
               std::invalid_argument);
  EXPECT_THROW(failpoints().arm_from_spec("gc_oom"), std::invalid_argument);
  EXPECT_THROW(failpoints().arm_from_spec("gc_oom:sometimes"),
               std::invalid_argument);
  EXPECT_THROW(failpoints().arm_from_spec("gc_oom:nth:zero"),
               std::invalid_argument);
  EXPECT_THROW(failpoints().arm_from_spec("gc_oom:random:nope"),
               std::invalid_argument);
}

TEST_F(FailPointTest, ArmFromEnvArmsEverySpec) {
  setenv("BDDMIN_FAILPOINTS", "gc_oom:once,minimize_hang:nth:2:9", 1);
  failpoints().arm_from_env();
  EXPECT_TRUE(failpoints().evaluate("gc_oom"));
  EXPECT_FALSE(failpoints().evaluate("minimize_hang"));
  const auto hit = failpoints().evaluate("minimize_hang");
  EXPECT_TRUE(hit);
  EXPECT_EQ(hit.value, 9u);
}

TEST_F(FailPointTest, MalformedEnvSpecIsAHardError) {
  setenv("BDDMIN_FAILPOINTS", "gc_oom:nonsense", 1);
  EXPECT_THROW(failpoints().arm_from_env(), harness::EnvError);
  unsetenv("BDDMIN_FAILPOINTS");
  failpoints().arm_from_env();  // unset: no-op
  EXPECT_FALSE(failpoints().evaluate("gc_oom"));
}

// ---- Centralized env parsing --------------------------------------------

TEST(EnvParsing, U64FallbackAndStrictness) {
  unsetenv("BDDMIN_NODE_LIMIT");
  EXPECT_EQ(harness::env_u64("BDDMIN_NODE_LIMIT", 77), 77u);
  setenv("BDDMIN_NODE_LIMIT", "123456", 1);
  EXPECT_EQ(harness::env_u64("BDDMIN_NODE_LIMIT", 77), 123456u);
  for (const char* bad : {"12x", "-3", "+3", " 12", "12 ", "0x10", "banana",
                          "99999999999999999999999999"}) {
    setenv("BDDMIN_NODE_LIMIT", bad, 1);
    EXPECT_THROW(static_cast<void>(harness::env_u64("BDDMIN_NODE_LIMIT", 0)),
                 harness::EnvError)
        << bad;
  }
  setenv("BDDMIN_NODE_LIMIT", "", 1);
  EXPECT_EQ(harness::env_u64("BDDMIN_NODE_LIMIT", 5), 5u);
  unsetenv("BDDMIN_NODE_LIMIT");
}

TEST(EnvParsing, StringCopiesTheValueOut) {
  setenv("BDDMIN_TRACE", "/tmp/x.json", 1);
  const auto v = harness::env_string("BDDMIN_TRACE");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "/tmp/x.json");
  unsetenv("BDDMIN_TRACE");
  EXPECT_FALSE(harness::env_string("BDDMIN_TRACE").has_value());
}

// ---- Engine resilience under injected faults ----------------------------

std::vector<engine::Job> small_jobs(unsigned count) {
  std::vector<engine::Job> jobs;
  const std::uint64_t mask = tt_mask(4);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (unsigned k = 0; k < count; ++k) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::uint64_t f = x & mask;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    jobs.push_back(engine::make_tt_job("j" + std::to_string(k), f,
                                       (x & mask) | 1, 4));
  }
  return jobs;
}

TEST_F(FailPointTest, InjectedDeadlineRetriesToACleanOutcome) {
  const std::vector<engine::Job> jobs = small_jobs(1);
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  eo.num_threads = 1;
  eo.max_retries = 1;

  const engine::BatchReport clean = engine::run_batch(jobs, eo);
  ASSERT_EQ(clean.outcomes[0].status, engine::JobStatus::kOk);
  EXPECT_EQ(clean.outcomes[0].attempts, 1u);
  EXPECT_EQ(clean.outcomes[0].retry_reason, "");

  failpoints().arm_from_spec("minimize_deadline:once");
  const engine::BatchReport faulted = engine::run_batch(jobs, eo);
  EXPECT_EQ(faulted.outcomes[0].status, engine::JobStatus::kOk);
  EXPECT_EQ(faulted.outcomes[0].attempts, 2u);
  EXPECT_EQ(faulted.outcomes[0].retry_reason, "deadline");
  // The retried attempt starts from a fresh outcome, so the default CSV
  // (no attempts columns) is byte-identical to the never-faulted run.
  EXPECT_EQ(engine::report_csv(faulted), engine::report_csv(clean));
}

TEST_F(FailPointTest, RetryBudgetExhaustedKeepsTheDegradedOutcome) {
  const std::vector<engine::Job> jobs = small_jobs(1);
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  eo.num_threads = 1;
  eo.max_retries = 1;
  // Fires on both the first attempt and the retry.
  failpoints().arm_from_spec("minimize_deadline:random:1.0");
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  EXPECT_EQ(rep.outcomes[0].status, engine::JobStatus::kResourceLimit);
  EXPECT_EQ(rep.outcomes[0].attempts, 2u);
  EXPECT_EQ(rep.outcomes[0].retry_reason, "deadline");
  EXPECT_NE(rep.outcomes[0].detail.find("deadline"), std::string::npos);
}

TEST_F(FailPointTest, WatchdogQuarantinesAHungJobWithoutRetries) {
  const std::vector<engine::Job> jobs = small_jobs(2);
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  eo.num_threads = 1;
  eo.hang_timeout_seconds = 0.05;
  failpoints().arm_from_spec("worker_loop_hang:once:2000");
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  EXPECT_EQ(rep.count(engine::JobStatus::kQuarantined), 1u);
  EXPECT_EQ(rep.count(engine::JobStatus::kOk), 1u);
  for (const engine::JobOutcome& o : rep.outcomes) {
    if (o.status == engine::JobStatus::kQuarantined) {
      EXPECT_NE(o.detail.find("watchdog"), std::string::npos) << o.detail;
    }
  }
}

TEST_F(FailPointTest, QuarantineDumpsTheFlightRecorder) {
  // A quarantined job must leave a black-box trail: the worker's flight
  // recorder dumped to stderr and appended to `<journal>.flight`.
  const std::string journal =
      ::testing::TempDir() + "bddmin_flight_quarantine.journal";
  std::remove(journal.c_str());
  const std::string flight = journal + ".flight";
  std::remove(flight.c_str());

  const std::vector<engine::Job> jobs = small_jobs(2);
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  eo.num_threads = 1;
  eo.hang_timeout_seconds = 0.05;
  eo.journal_path = journal;
  failpoints().arm_from_spec("worker_loop_hang:once:2000");
  ::testing::internal::CaptureStderr();
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  const std::string err = ::testing::internal::GetCapturedStderr();
  ASSERT_EQ(rep.count(engine::JobStatus::kQuarantined), 1u);

  EXPECT_NE(err.find("flight recorder"), std::string::npos) << err;
  EXPECT_NE(err.find("job quarantined"), std::string::npos) << err;

  std::ifstream in(flight);
  ASSERT_TRUE(in.good()) << "no flight dump file at " << flight;
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find("flight recorder"), std::string::npos);
  EXPECT_NE(body.str().find("quarantine"), std::string::npos);
  // The ring held real scheduler history, not just the terminal event.
  EXPECT_NE(body.str().find("job_start"), std::string::npos) << body.str();
  std::remove(flight.c_str());
  std::remove(journal.c_str());
}

TEST_F(FailPointTest, WatchdogPlusRetryRecoversTheHungJob) {
  const std::vector<engine::Job> jobs = small_jobs(2);
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  eo.num_threads = 1;
  eo.max_retries = 1;
  const engine::BatchReport clean = engine::run_batch(jobs, eo);

  eo.hang_timeout_seconds = 0.05;
  failpoints().arm_from_spec("minimize_hang:once:2000");
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  EXPECT_EQ(rep.count(engine::JobStatus::kOk), 2u);
  EXPECT_EQ(engine::report_csv(rep), engine::report_csv(clean));
  unsigned retried = 0;
  for (const engine::JobOutcome& o : rep.outcomes) {
    if (o.attempts > 1) {
      ++retried;
      EXPECT_EQ(o.retry_reason, "hung");
    }
  }
  EXPECT_EQ(retried, 1u);
}

TEST_F(FailPointTest, InjectedOomLeavesManagersAuditClean) {
  const std::vector<engine::Job> jobs = small_jobs(4);
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  eo.num_threads = 1;
  eo.max_retries = 2;
  eo.audit_level = analysis::AuditLevel::kCache;
  failpoints().arm_from_spec("unique_insert_oom:nth:40");
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  for (const engine::JobOutcome& o : rep.outcomes) {
    EXPECT_NE(o.status, engine::JobStatus::kError)
        << o.name << ": " << o.error;
    EXPECT_EQ(o.audit_findings, 0u) << o.name;
  }
}

TEST_F(FailPointTest, AttemptsColumnsAreOptIn) {
  const std::vector<engine::Job> jobs = small_jobs(1);
  engine::EngineOptions eo;
  eo.heuristic = "restr";
  const engine::BatchReport rep = engine::run_batch(jobs, eo);
  const std::string plain = engine::report_csv(rep);
  EXPECT_EQ(plain.find("attempts"), std::string::npos);
  const std::string with =
      engine::report_csv(rep, false, false, /*include_attempts=*/true);
  EXPECT_NE(with.find(",attempts,retry_reason"), std::string::npos);
  EXPECT_NE(with.find(",1,"), std::string::npos);
}

}  // namespace
}  // namespace bddmin
