#!/usr/bin/env python3
"""bddmin-specific lint: invariant contracts the compiler cannot check.

Rules (see docs/API.md for the full contract text):
  R1  every memoized recursion in the BDD core (a function body that both
      probes and fills the computed cache) must charge the resource
      governor on its memo-miss path (`charge_step`)
  R2  every computed-cache probe/fill names its op tag from the single
      registry (src/bdd/cache_tags.hpp) — directly, through a same-file
      `constexpr` alias, through `analysis::ManagerAccess::op_*()`, or
      through a `CacheKey` built once by `cache_key(...)`; ad-hoc numeric
      tags are errors, as are duplicate values inside the registry itself
  R3  no raw `assert(` outside src/analysis/check.hpp — use BDDMIN_CHECK
      (always on) or BDDMIN_DCHECK (hot path, opt-in) so failures obey the
      project-wide tiering
  R4  an `Edge` local must not be used after a `garbage_collect()` /
      `reorder_sift*()` call unless it was pinned first (wrapped in a
      `Bdd`, passed to `pin_for_unwind`, or stored into a pinned
      container) — unpinned edges may dangle across reclamation
  R5  `TraceScope` / `PhaseScope` must be bound to named locals; a
      discarded temporary destructs immediately and records nothing
  R6  stress-harness code (src/stress/) must not hold a `TraceScope`,
      `PhaseScope` or mutex lock across a cross-thread wait (`join()`,
      `wait()`, `wait_for()`, `wait_until()`) — an invariant hook that
      blocks while holding the tracer or a lock can deadlock the very
      schedule it is auditing; release the scope/lock first
  R7  failpoint hygiene: every `BDDMIN_FAILPOINT("name")` site must name
      an entry of the catalog in src/analysis/failpoint.cpp, each
      catalog name may have at most one site in the tree (a second site
      makes `once`/`nth` arming fire at whichever polls first —
      ambiguous), the catalog itself must not register a name twice, and
      a `catch` of ResourceExhausted must not have an empty body — a
      silently swallowed injection defeats the fault it simulates

Suppressions: append `// bddmin-lint: allow(Rn) -- <justification>` on the
offending line or the line directly above it.  The justification is
mandatory; an allow() without one is itself reported.

Input is either a compile_commands.json (`-p`), or explicit files or
directories.  Headers reachable under the source roots are scanned too.
Uses clang.cindex for precise parsing when the module and a libclang are
available; otherwise a built-in lexer (comment/string-aware, brace-matched
function bodies) performs the same checks — CI runs both paths.

Exit status 0 when no findings, 1 otherwise (one `file:line: Rn: message`
per finding on stdout, summary on stderr).
"""
import argparse
import json
import os
import re
import sys

ALL_RULES = ("R1", "R2", "R3", "R4", "R5", "R6", "R7")

# Files whose *definitions* legitimately contain the patterns a rule hunts.
RULE_EXEMPT_FILES = {
    "R3": ("src/analysis/check.hpp",),
    "R5": ("src/telemetry/trace.hpp", "src/telemetry/profile.hpp"),
}

# R1 applies to the BDD core only: that is where memoized recursions live
# and where an uncharged recursion silently escapes the step budget.
R1_FILES = ("src/bdd/ops.cpp", "src/bdd/manager.cpp")

# R6 applies to the stress harness only: invariant hooks and workload
# states run on worker threads whose peers they may need to wait for.
R6_PATH = "src/stress/"

REGISTRY_RELPATH = "src/bdd/cache_tags.hpp"

# R7's ground truth: the failpoint catalog between the sentinel comments.
FAILPOINT_CATALOG_RELPATH = "src/analysis/failpoint.cpp"

SUPPRESS_RE = re.compile(
    r"//\s*bddmin-lint:\s*allow\((R[1-7])\)\s*(?:(?:--|:)\s*(.*\S))?\s*$")


class Finding:
    __slots__ = ("path", "line", "rule", "message")

    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message


# ---------------------------------------------------------------------------
# Lexing: strip comments and string/char literals, preserving line structure,
# and collect suppression comments keyed by line number.
# ---------------------------------------------------------------------------

def scan_source(text, keep_strings=False):
    """Return (clean_text, suppressions) for one translation unit.

    clean_text has comments and string/char literal *contents* blanked out
    (newlines kept), so downstream regexes never match inside either.
    keep_strings leaves literal contents in place (still comment-free) for
    rules that must read them, like R7's failpoint site names.
    suppressions maps line number -> list of (rule, justification|None).
    """
    suppressions = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        m = SUPPRESS_RE.search(line)
        if m:
            suppressions.setdefault(lineno, []).append((m.group(1), m.group(2)))

    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif ch == '"' or ch == "'":
            quote = ch
            out.append(quote)
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    if keep_strings:
                        out.append(text[i])
                    i += 1
                if i < n:
                    if keep_strings or text[i] == "\n":
                        out.append(text[i])
                i += 1
            out.append(quote)
            i = min(i + 1, n)
        else:
            out.append(ch)
            i += 1
    return "".join(out), suppressions


SIGNATURE_TAIL_RE = re.compile(
    r"\)\s*(?:const|noexcept(?:\([^()]*\))?|override|final|mutable|&&?|"
    r"->\s*[\w:<>,*&\s]+|\[\[[^\]]*\]\])*\s*$")

CONTROL_KEYWORDS = frozenset(
    ("if", "for", "while", "switch", "catch", "return", "sizeof"))


def _looks_like_function(prefix):
    """True when prefix (text before a '{') ends in a parameter list."""
    m = SIGNATURE_TAIL_RE.search(prefix)
    if not m:
        return False
    # Balance back from the ')' that opens the qualifier tail to its '(',
    # then inspect the word before it: control keywords open blocks, not
    # function bodies.
    depth = 0
    k = m.start()
    while k >= 0:
        if prefix[k] == ")":
            depth += 1
        elif prefix[k] == "(":
            depth -= 1
            if depth == 0:
                break
        k -= 1
    if k < 0:
        return False
    head = prefix[:k].rstrip()
    word = re.search(r"(\w+)\s*$", head)
    if word and word.group(1) in CONTROL_KEYWORDS:
        return False
    return word is not None or head.endswith("]")  # identifier, or a lambda


def function_bodies(clean):
    """Yield (start_line, body_text) for every function body in clean text.

    A body is a brace block whose preceding context ends in a parameter
    list (plus qualifiers).  Namespace/class/enum blocks are containers —
    their members are scanned in place, the container itself is not
    yielded.  Good enough for clang-formatted code; the lint fixtures
    exercise the shapes that matter.
    """
    line_of = _line_index(clean)
    i, n = 0, len(clean)
    while i < n:
        if clean[i] == "{" and _looks_like_function(clean[max(0, i - 300):i]):
            end = _match_brace(clean, i)
            yield line_of(i), clean[i + 1:end]
            i = end + 1
            continue
        i += 1


def _match_brace(text, open_idx):
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return j
    return len(text) - 1


def _line_index(text):
    starts = [0]
    for k, ch in enumerate(text):
        if ch == "\n":
            starts.append(k + 1)

    def line_of(idx):
        lo, hi = 0, len(starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if starts[mid] <= idx:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    return line_of


def first_argument(clean, call_idx):
    """The first argument of the call whose '(' is at call_idx."""
    depth = 0
    start = call_idx + 1
    for j in range(call_idx, len(clean)):
        ch = clean[j]
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
            if depth == 0:
                return clean[start:j].strip()
        elif ch == "," and depth == 1:
            return clean[start:j].strip()
    return clean[start:].strip()


# ---------------------------------------------------------------------------
# The rules (text frontend).
# ---------------------------------------------------------------------------

def check_r1(relpath, clean, findings):
    if not relpath.endswith(R1_FILES):
        return
    for start_line, body in function_bodies(clean):
        if "cache_lookup" in body and "cache_insert" in body \
                and "charge_step" not in body:
            findings.append(Finding(
                relpath, start_line, "R1",
                "memoized recursion (cache_lookup + cache_insert) never "
                "calls governor charge_step on its miss path"))


REGISTRY_CONST_RE = re.compile(
    r"inline\s+constexpr\s+std::uint32_t\s+(k\w+)\s*=\s*([\w:]+|\d+)\s*;")
ALIAS_RE = re.compile(
    r"constexpr\s+std::uint32_t\s+(k\w+)\s*=\s*cache_tag::(k\w+)\s*;")
CACHE_CALL_RE = re.compile(r"\b(cache_lookup|cache_insert|cache_key)\s*\(")
CACHEKEY_DECL_RE = re.compile(
    r"\b(?:Manager::)?CacheKey\s+(\w+)\s*=")


def load_registry(root):
    """Name -> value (int where literal) from the tag registry header."""
    path = os.path.join(root, REGISTRY_RELPATH)
    registry = {}
    try:
        with open(path, encoding="utf-8") as fh:
            clean, _ = scan_source(fh.read())
    except OSError:
        return registry
    symbolic = {}
    for name, value in REGISTRY_CONST_RE.findall(clean):
        registry[name] = value
        symbolic[name] = value
    # Resolve one level of name = other-name (e.g. kUserBase aliases).
    for name, value in list(registry.items()):
        if not value.isdigit() and value in symbolic:
            registry[name] = symbolic[value]
    return registry


def check_registry_duplicates(root, registry, findings):
    seen = {}
    path = os.path.join(root, REGISTRY_RELPATH)
    try:
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except OSError:
        return
    for lineno, line in enumerate(lines, 1):
        m = REGISTRY_CONST_RE.search(line)
        if not m:
            continue
        name, value = m.group(1), m.group(2)
        if not value.isdigit():
            continue
        if value in seen:
            findings.append(Finding(
                REGISTRY_RELPATH, lineno, "R2",
                f"duplicate cache tag value {value}: {name} collides with "
                f"{seen[value]}"))
        else:
            seen[value] = name


def check_r2(relpath, clean, registry, findings):
    line_of = _line_index(clean)
    aliases = {}
    for m in ALIAS_RE.finditer(clean):
        alias, target = m.group(1), m.group(2)
        if target in registry:
            aliases[alias] = target
        else:
            findings.append(Finding(
                relpath, line_of(m.start()), "R2",
                f"alias {alias} names unknown cache tag cache_tag::{target}"))
    cachekey_vars = set(m.group(1) for m in CACHEKEY_DECL_RE.finditer(clean))

    for m in CACHE_CALL_RE.finditer(clean):
        fn = m.group(1)
        # Skip declarations/definitions of the API itself (Manager::...).
        before = clean[max(0, m.start() - 60):m.start()]
        if re.search(r"(?:Manager::|void\s+|bool\s+)$", before):
            continue
        arg = first_argument(clean, m.end() - 1)
        if not arg:
            continue
        # A parameter declaration ("std::uint32_t op") marks the API's own
        # declaration, not a call site.
        if re.fullmatch(r"(?:const\s+)?[\w:]+(?:\s*[&*])?\s+\w+", arg):
            continue
        lineno = line_of(m.start())
        base = arg.split("+")[0].strip()  # allow `kUserOpBase + h` offsets
        if _tag_ok(base, registry, aliases) or \
                (fn != "cache_key" and base in cachekey_vars):
            continue
        if fn != "cache_key" and re.match(r"cache_key\s*\(", base):
            continue  # nested cache_key() call is checked on its own
        # First token being a known CacheKey variable also covers members
        # like `and_key` used twice; anything else is ad-hoc.
        findings.append(Finding(
            relpath, lineno, "R2",
            f"{fn}() tag {arg!r} is not a cache_tags.hpp registry constant "
            "(use cache_tag::k*, a same-file constexpr alias of one, "
            "ManagerAccess::op_*(), kUserOpBase, or a named CacheKey)"))


def _tag_ok(base, registry, aliases):
    if re.fullmatch(r"(?:bddmin::)?cache_tag::(k\w+)", base):
        name = base.rsplit("::", 1)[1]
        return name in registry
    if re.fullmatch(r"(?:analysis::)?ManagerAccess::op_\w+\(\)", base):
        return True
    if re.fullmatch(r"(?:Manager::)?kUserOpBase", base):
        return True
    return base in aliases


ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")


def check_r3(relpath, clean, findings):
    line_of = _line_index(clean)
    for m in ASSERT_RE.finditer(clean):
        prefix = clean[max(0, m.start() - 7):m.start()]
        if prefix.endswith("static_"):
            continue
        findings.append(Finding(
            relpath, line_of(m.start()), "R3",
            "raw assert() — use BDDMIN_CHECK (always on) or BDDMIN_DCHECK "
            "(hot path) from analysis/check.hpp"))


EDGE_DECL_RE = re.compile(
    r"(?:^|[;{}])\s*(?:const\s+)?Edge\s+(\w+)\s*(?:=\s*([^;]*)|\{[^;]*)?;")
GC_CALL_RE = re.compile(r"\b(?:garbage_collect|reorder_sift\w*)\s*\(")
# Initializers whose value survives collection by construction: terminals
# and variable nodes are permanently referenced.
IMMORTAL_INIT_RE = re.compile(r"^(?:kOne|kZero|\w+[.\->]*\s*n?var_edge\s*\()")


def check_r4(relpath, body_line, body, findings):
    gc_positions = [m.start() for m in GC_CALL_RE.finditer(body)]
    if not gc_positions:
        return
    line_of = _line_index(body)
    for m in EDGE_DECL_RE.finditer(body):
        name = m.group(1)
        init = (m.group(2) or "").strip()
        if IMMORTAL_INIT_RE.match(init):
            continue
        decl_end = m.end()
        gcs = [g for g in gc_positions if g > decl_end]
        if not gcs:
            continue
        gc_at = gcs[0]
        # Pinned before the collection?  Wrapping in a Bdd, an explicit
        # ref()/pin_for_unwind(), or storage into a pinned container all
        # count.
        window = body[decl_end:gc_at]
        esc = re.escape(name)
        if re.search(r"\bBdd\s+\w+\s*[({][^;]*\b%s\b" % esc, window) \
                or re.search(r"\bpin_for_unwind\s*\(\s*%s\s*\)" % esc, window) \
                or re.search(r"\bref\s*\(\s*%s\s*\)" % esc, window) \
                or re.search(r"\b%s\s*=\s*[^;]*\bpin\s*\(" % esc, window) \
                or re.search(r"emplace_back\s*\([^;]*\b%s\b" % esc, window):
            continue
        after = body[gc_at:]
        use = re.search(r"\b%s\b" % esc, after)
        if use:
            findings.append(Finding(
                relpath, body_line + line_of(gc_at + use.start()) - 1, "R4",
                f"Edge local {name!r} used after garbage_collect/reorder "
                "without pinning (wrap in Bdd, ref(), or pin_for_unwind "
                "first)"))


SCOPE_TEMP_RE = re.compile(
    r"(?:^|[;{}])\s*(?:\w[\w:]*::)?(TraceScope|PhaseScope)\s*[({]")


def check_r5(relpath, clean, findings):
    line_of = _line_index(clean)
    for m in SCOPE_TEMP_RE.finditer(clean):
        findings.append(Finding(
            relpath, line_of(m.start(1)), "R5",
            f"discarded {m.group(1)} temporary destructs immediately — "
            "bind it to a named local"))


R6_HOLD_DECL_RE = re.compile(
    r"(?:^|[;{}()])\s*(?:const\s+)?(?:\w[\w:]*::)?"
    r"(TraceScope|PhaseScope|lock_guard|unique_lock|scoped_lock|shared_lock)"
    r"\s*(?:<[^;<>]*>)?\s+(\w+)\s*[({=]")
R6_WAIT_RE = re.compile(r"[.\->]\s*(join|wait|wait_for|wait_until)\s*\(")


def _depth_at(text, idx):
    depth = 0
    for ch in text[:idx]:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
    return depth


def check_r6(relpath, body_line, body, findings):
    """Scope/lock held across a cross-thread wait (stress harness only).

    For each TraceScope/PhaseScope/lock declaration, scan forward to the
    close of its enclosing brace block; a join()/wait*() inside that window
    blocks while the scope or lock is still held.  An explicit `.unlock()`
    on the lock before the wait releases it and is compliant.  Scope-based
    analysis, so a lock taken inside a nested block that closes before the
    wait never triggers.
    """
    if not R6_WAIT_RE.search(body):
        return
    line_of = _line_index(body)
    for m in R6_HOLD_DECL_RE.finditer(body):
        kind, name = m.group(1), m.group(2)
        start = m.end()
        base_depth = _depth_at(body, start)
        end = len(body)
        d = base_depth
        for j in range(start, len(body)):
            ch = body[j]
            if ch == "{":
                d += 1
            elif ch == "}":
                d -= 1
                if d < base_depth:
                    end = j
                    break
        window = body[start:end]
        wait = R6_WAIT_RE.search(window)
        if not wait:
            continue
        if re.search(r"\b%s\s*\.\s*unlock\s*\(" % re.escape(name),
                     window[:wait.start()]):
            continue
        findings.append(Finding(
            relpath, body_line + line_of(start + wait.start()) - 1, "R6",
            f"{kind} {name!r} is still held across the cross-thread "
            f"{wait.group(1)}() — release the scope/lock (or .unlock()) "
            "before waiting; a blocked invariant hook holding the tracer "
            "or a lock can deadlock the schedule under audit"))


FAILPOINT_SITE_RE = re.compile(r"\bBDDMIN_FAILPOINT\s*\(\s*\"(\w+)\"\s*\)")
FAILPOINT_ENTRY_RE = re.compile(r"^\s*\{\s*\"(\w+)\"", re.MULTILINE)
EMPTY_EXHAUSTED_CATCH_RE = re.compile(
    r"\bcatch\s*\(([^()]*\bResourceExhausted\b[^()]*)\)\s*\{\s*\}")


def load_failpoint_catalog(root, findings):
    """Name -> line of the failpoint catalog; duplicates become findings.

    Parses the block between the bddmin-failpoint-catalog-begin/end
    sentinels in src/analysis/failpoint.cpp (comment-stripped, strings
    kept — the names *are* string literals).
    """
    path = os.path.join(root, FAILPOINT_CATALOG_RELPATH)
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError:
        return {}
    begin = text.find("bddmin-failpoint-catalog-begin")
    end = text.find("bddmin-failpoint-catalog-end")
    if begin < 0 or end < 0 or end <= begin:
        findings.append(Finding(
            FAILPOINT_CATALOG_RELPATH, 1, "R7",
            "failpoint catalog sentinels (bddmin-failpoint-catalog-begin/"
            "end) not found — R7 cannot cross-check sites"))
        return {}
    block = scan_source(text[begin:end], keep_strings=True)[0]
    line_base = text.count("\n", 0, begin)
    catalog = {}
    for m in FAILPOINT_ENTRY_RE.finditer(block):
        name = m.group(1)
        lineno = line_base + block.count("\n", 0, m.start()) + 1
        if name in catalog:
            findings.append(Finding(
                FAILPOINT_CATALOG_RELPATH, lineno, "R7",
                f"failpoint {name!r} registered twice in the catalog "
                f"(first at line {catalog[name]})"))
        else:
            catalog[name] = lineno
    return catalog


def check_r7(relpath, clean_keep, clean, catalog, seen_sites, findings):
    """Failpoint site hygiene; `seen_sites` accumulates across files."""
    line_of = _line_index(clean_keep)
    for m in FAILPOINT_SITE_RE.finditer(clean_keep):
        name = m.group(1)
        lineno = line_of(m.start())
        if name not in catalog:
            findings.append(Finding(
                relpath, lineno, "R7",
                f"BDDMIN_FAILPOINT site {name!r} is not in the catalog of "
                f"{FAILPOINT_CATALOG_RELPATH} — it can never be armed"))
        elif name in seen_sites:
            first_path, first_line = seen_sites[name]
            findings.append(Finding(
                relpath, lineno, "R7",
                f"second BDDMIN_FAILPOINT site for {name!r} (first at "
                f"{first_path}:{first_line}) — once/nth arming would fire "
                "at whichever site polls first"))
        else:
            seen_sites[name] = (relpath, lineno)
    line_of_clean = _line_index(clean)
    for m in EMPTY_EXHAUSTED_CATCH_RE.finditer(clean):
        findings.append(Finding(
            relpath, line_of_clean(m.start()), "R7",
            "empty catch of ResourceExhausted swallows injected faults — "
            "recover, rethrow, or at least record the trip"))


# ---------------------------------------------------------------------------
# Optional clang.cindex frontend (same findings, AST-precise locations).
# ---------------------------------------------------------------------------

def try_cindex():
    """Return the clang.cindex module when usable, else None."""
    try:
        import clang.cindex as cindex  # type: ignore
        cindex.Index.create()
        return cindex
    except Exception:  # ImportError, LibclangError — fall back to the lexer
        return None


def cindex_function_bodies(cindex, path, compile_args):
    """Yield (start_line, body_text) via libclang, mirroring the lexer."""
    index = cindex.Index.create()
    tu = index.parse(path, args=compile_args or ["-std=c++20"])
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    kinds = (cindex.CursorKind.FUNCTION_DECL, cindex.CursorKind.CXX_METHOD,
             cindex.CursorKind.CONSTRUCTOR, cindex.CursorKind.DESTRUCTOR,
             cindex.CursorKind.FUNCTION_TEMPLATE)

    def walk(cursor):
        for child in cursor.get_children():
            if child.kind in kinds and child.is_definition() and \
                    child.location.file and child.location.file.name == path:
                ext = child.extent
                yield (ext.start.line,
                       text[ext.start.offset:ext.end.offset])
            else:
                yield from walk(child)

    yield from walk(tu.cursor)


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

SOURCE_EXTS = (".cpp", ".cc", ".cxx", ".hpp", ".h")


def collect_files(args, root):
    files = set()
    if args.compile_commands:
        with open(args.compile_commands, encoding="utf-8") as fh:
            for entry in json.load(fh):
                p = entry["file"]
                if not os.path.isabs(p):
                    p = os.path.join(entry.get("directory", root), p)
                files.add(os.path.realpath(p))
        # Headers ride along: scan the project source roots.
        for sub in ("src", "tests", "bench", "examples"):
            top = os.path.join(root, sub)
            for dirpath, _, names in os.walk(top):
                for name in names:
                    if name.endswith((".hpp", ".h")):
                        files.add(os.path.realpath(os.path.join(dirpath, name)))
    for p in args.paths:
        if os.path.isdir(p):
            explicit_fixture = "lint_fixtures" in os.path.realpath(p)
            for dirpath, dirnames, names in os.walk(p):
                if not explicit_fixture and "lint_fixtures" in dirnames:
                    # The violation-seeding test corpus lints dirty by
                    # design; walk it only when named explicitly.
                    dirnames.remove("lint_fixtures")
                for name in names:
                    if name.endswith(SOURCE_EXTS):
                        files.add(os.path.realpath(os.path.join(dirpath, name)))
        else:
            files.add(os.path.realpath(p))
    return sorted(f for f in files if f.endswith(SOURCE_EXTS))


def relpath_of(path, root):
    rel = os.path.relpath(path, root)
    return path if rel.startswith("..") else rel


def exempt(relpath, rule):
    rel = relpath.replace(os.sep, "/")
    return any(rel.endswith(e) for e in RULE_EXEMPT_FILES.get(rule, ()))


def apply_suppressions(findings, suppressions_by_file, errors):
    kept = []
    for f in findings:
        allows = []
        per_file = suppressions_by_file.get(f.path, {})
        for line in (f.line, f.line - 1):
            allows.extend(per_file.get(line, []))
        matched = False
        for rule, justification in allows:
            if rule != f.rule:
                continue
            if justification:
                matched = True
            else:
                errors.append(Finding(
                    f.path, f.line, f.rule,
                    "suppression without justification — write "
                    f"'bddmin-lint: allow({f.rule}) -- <why>'"))
                matched = True  # the naked allow is the reported finding
        if not matched:
            kept.append(f)
    return kept


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint")
    parser.add_argument("-p", "--compile-commands", metavar="JSON",
                        help="compile_commands.json; lints every TU plus "
                             "project headers")
    parser.add_argument("--root", default=None,
                        help="repo root for relative paths and the tag "
                             "registry (default: inferred from this script)")
    parser.add_argument("--rules", default=",".join(ALL_RULES),
                        help="comma-separated subset of rules (default: all)")
    parser.add_argument("--no-cindex", action="store_true",
                        help="skip clang.cindex even when available")
    args = parser.parse_args()

    root = os.path.realpath(
        args.root or os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                  os.pardir))
    rules = tuple(r.strip() for r in args.rules.split(",") if r.strip())
    for r in rules:
        if r not in ALL_RULES:
            print(f"bddmin_lint: unknown rule {r!r}", file=sys.stderr)
            return 2

    files = collect_files(args, root)
    if not files:
        print("bddmin_lint: no input files (pass paths or -p "
              "compile_commands.json)", file=sys.stderr)
        return 2

    cindex = None if args.no_cindex else try_cindex()
    registry = load_registry(root)
    if "R2" in rules and not registry:
        print(f"bddmin_lint: warning: tag registry {REGISTRY_RELPATH} not "
              "found under --root; R2 limited to alias checks",
              file=sys.stderr)

    findings = []
    suppressions_by_file = {}
    if "R2" in rules:
        check_registry_duplicates(root, registry, findings)
    failpoint_catalog = {}
    failpoint_sites = {}
    if "R7" in rules:
        failpoint_catalog = load_failpoint_catalog(root, findings)
    for path in files:
        rel = relpath_of(path, root)
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError as e:
            print(f"bddmin_lint: cannot read {rel}: {e}", file=sys.stderr)
            return 2
        clean, suppressions = scan_source(text)
        suppressions_by_file[rel] = suppressions

        if "R1" in rules and not exempt(rel, "R1"):
            check_r1(rel, clean, findings)
        if "R2" in rules and not exempt(rel, "R2") and \
                not rel.replace(os.sep, "/").endswith(REGISTRY_RELPATH):
            check_r2(rel, clean, registry, findings)
        if "R3" in rules and not exempt(rel, "R3"):
            check_r3(rel, clean, findings)
        want_r4 = "R4" in rules and not exempt(rel, "R4") and \
            rel.endswith(".cpp")
        want_r6 = "R6" in rules and not exempt(rel, "R6") and \
            R6_PATH in rel.replace(os.sep, "/")
        if want_r4 or want_r6:
            bodies = None
            if cindex is not None:
                try:
                    bodies = list(cindex_function_bodies(cindex, path, None))
                except Exception:
                    bodies = None  # parse trouble: lexer path below
            if bodies is None:
                bodies = list(function_bodies(clean))
            for body_line, body in bodies:
                body_clean = body if cindex is None else scan_source(body)[0]
                if want_r4:
                    check_r4(rel, body_line, body_clean, findings)
                if want_r6:
                    check_r6(rel, body_line, body_clean, findings)
        if "R5" in rules and not exempt(rel, "R5"):
            check_r5(rel, clean, findings)
        if "R7" in rules and not exempt(rel, "R7"):
            clean_keep = scan_source(text, keep_strings=True)[0]
            check_r7(rel, clean_keep, clean, failpoint_catalog,
                     failpoint_sites, findings)

    errors = []
    findings = apply_suppressions(findings, suppressions_by_file, errors)
    findings.extend(errors)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f"{f.path}:{f.line}: {f.rule}: {f.message}")
    if findings:
        print(f"bddmin_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    frontend = "clang.cindex" if cindex is not None else "builtin lexer"
    print(f"bddmin_lint: OK — {len(files)} file(s), rules "
          f"{','.join(rules)} ({frontend})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
