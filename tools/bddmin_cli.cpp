/// \file bddmin_cli.cpp
/// \brief Command-line front end.
///
/// ```
/// bddmin_cli minimize <circuit.pla> [--heuristic NAME] [--sift]
///                     [--node-limit N]
///     Minimize every output of an espresso PLA; prints per-output and
///     forest node counts for the chosen heuristic (default: all).
///     --node-limit bounds the manager's allocated nodes while each
///     heuristic runs; a tripped run degrades to the trivial cover f and
///     its size is marked with '*'.
///
/// bddmin_cli equiv <a.kiss> <b.kiss> [--stats]
///     Product-machine equivalence; prints VERDICT and, for inequivalent
///     machines, a distinguishing input sequence.  --stats additionally
///     runs every minimization heuristic on the intercepted calls and
///     prints the Table-3 style summary.
///
/// bddmin_cli reach <a.kiss>
///     Reachable-state count and transition-function minimization
///     against the unreachable states.
///
/// bddmin_cli audit <circuit.pla> [--level N] [--mutate CLASS] [--sift]
///                  [--node-limit N]
///     Build every output of the PLA, run all minimization heuristics,
///     then run the BddAudit passes up to level N (default 4: structure,
///     ref counts, cache coherence, cover contracts) and print the
///     report.  --mutate deliberately corrupts the manager first
///     (complement-flip | unlink | stale-cache | ref-skew | count-skew)
///     to demonstrate the auditor detects that failure class; the exit
///     code is 3 when findings are reported.
///
/// bddmin_cli batch [--pla FILE] [--jobs N] [--vars K] [--density D]
///                  [--seed S] [--threads T] [--heuristic NAME]
///                  [--audit-level L] [--timeout-ms M] [--lower-bound]
///                  [--node-limit N] [--step-limit N]
///                  [--fallback-heuristic NAME] [--csv PATH] [--timings]
///                  [--max-retries N] [--backoff-ms N] [--hang-timeout-ms N]
///                  [--attempts] [--journal PATH] [--resume]
///                  [--progress] [--metrics PATH] [--shard-cost C]
///                  [--no-shard] [--journal-group-commit]
///     Shard a set of minimization jobs across a worker pool (each worker
///     owns a private manager) and print the per-status summary plus a
///     submission-order CSV report.  Jobs come from the PLA's output
///     columns, or from seeded random instances (reproducible end to end
///     from --seed; job k uses seed S+k).  --node-limit/--step-limit put
///     each heuristic run under a resource budget (defaults from
///     BDDMIN_NODE_LIMIT / BDDMIN_STEP_LIMIT); a tripped run degrades the
///     job to a still-valid cover — retried once on --fallback-heuristic
///     when given — and the job finishes `resource-limit`, not `error`.
///     The CSV is byte-identical for any --threads value; --timings
///     appends the non-deterministic timing columns and --counters the
///     deterministic telemetry counter / phase-step columns.
///     Resilience (docs/ROBUSTNESS.md): --max-retries re-runs jobs with a
///     transient failure class, backing off --backoff-ms * 2^k with
///     deterministic jitter; --hang-timeout-ms starts a watchdog that
///     cancels (and retries or quarantines) a stuck job; --attempts
///     appends the `attempts`/`retry_reason` CSV columns.  --journal PATH
///     keeps a checksummed write-ahead journal of the batch; after a
///     crash, `--journal PATH --resume` re-runs only the incomplete jobs
///     and produces a CSV byte-identical to an uninterrupted run.
///     Observability (docs/OBSERVABILITY.md): --progress keeps a single
///     self-overwriting status line on stderr (done/total, ok/fail/
///     quarantined, jobs/s, ETA), refreshed at most every 500 ms; it is
///     suppressed when stderr is not a terminal (BDDMIN_PROGRESS=1
///     forces it on) and never touches stdout or the CSV.  --metrics
///     PATH writes the run's scheduler metrics — p50/p90/p99 job
///     latency, per-worker busy/steal/sink/idle decomposition, steal
///     success rate, sampled queue depth — as JSON for
///     tools/scaling_report.py.
///     Sharding (docs/OBSERVABILITY.md): jobs are packed into shards by
///     a deterministic cost model and the worker deques dispatch whole
///     shards; within a shard the pooled manager is reused warm (no
///     reset) across consecutive same-width jobs, so the computed cache
///     carries over.  The CLI defaults the shard budget to
///     engine::kDefaultShardCost, overridable with --shard-cost C or
///     BDDMIN_SHARD_COST; --no-shard (or BDDMIN_NO_SHARD=1) restores
///     per-job scheduling.  The default CSV is byte-identical either
///     way.  --journal-group-commit (or BDDMIN_JOURNAL_GROUP_COMMIT=1)
///     batches the journal's completion records per shard with one
///     fsync per flush; a crash re-runs at most the unflushed tail of
///     one shard per worker on --resume.
///
/// bddmin_cli failpoints [--describe]
///     List the registered fault-injection points (one name per line, for
///     the CI sweep); --describe adds what each site simulates.  Arm them
///     via BDDMIN_FAILPOINTS=name:mode[:arg...] (see
///     src/analysis/failpoint.hpp).
///
/// bddmin_cli stats [batch flags]
///     Run the same batch as `batch` (all flags accepted) and print the
///     process-wide telemetry counters as Prometheus text exposition —
///     unique-table inserts/hits, computed-cache hits/misses per op
///     class, GC work, sift swaps and governor steps — followed by the
///     histogram families (job latency by outcome/attempt, governor
///     steps, steal-search latency, queue depth).  Set
///     BDDMIN_TRACE=<file> to also capture a Chrome trace of the run.
///
/// bddmin_cli stress [--workload NAME] [--seed S] [--threads T]
///                   [--steps K] [--wall-seconds W] [--audit-level L]
///                   [--no-minimize] [--list] [--replay T:K]
///                   [--expect-failure]
///     FSM-driven concurrency stress harness (docs/STRESS.md): T threads
///     walk the named workload graph (default `mixed`; `--list` shows
///     all) for K seeded steps each, running invariant hooks between
///     states.  The run is deterministic: the same --seed always yields
///     the same final invariant digest (leave --wall-seconds unset when
///     comparing digests).  Every failure prints a (seed, thread, step)
///     triple plus a minimized single-threaded schedule; `--replay T:K`
///     re-executes that thread's schedule on one thread and exits 0 iff
///     the failure reproduces.  `--expect-failure` inverts the verdict
///     for the `faults` workload: exit 0 iff an injected fault was caught
///     AND its seed triple replayed single-threaded.
///
/// Exit codes: 0 every job ok; 3 at least one job errored (genuine bug;
/// for `stress`: an invariant failed, or --replay/--expect-failure did
/// not reproduce); 4 no errors but some jobs degraded (resource-limit,
/// timeout, cancelled or quarantined); 1 usage / I/O problems.
/// ```
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/audit.hpp"
#include "analysis/cover_audit.hpp"
#include "analysis/failpoint.hpp"
#include "analysis/mutate.hpp"
#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "engine/engine.hpp"
#include "engine/journal.hpp"
#include "engine/shard.hpp"
#include "fsm/equiv.hpp"
#include "fsm/kiss.hpp"
#include "harness/csv.hpp"
#include "harness/env.hpp"
#include "harness/intercept.hpp"
#include "harness/json.hpp"
#include "harness/render.hpp"
#include "minimize/registry.hpp"
#include "pla/pla.hpp"
#include "stress/runner.hpp"
#include "stress/workloads.hpp"
#include "telemetry/counters.hpp"
#include "telemetry/histogram.hpp"

namespace {

using namespace bddmin;

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

std::uint64_t size_flag(int argc, char** argv, const char* flag) {
  const char* raw = flag_value(argc, argv, flag);
  return raw ? std::strtoull(raw, nullptr, 10) : 0;
}

/// Run \p h under a hard node quota; a trip degrades to the trivial cover
/// f and reclaims the aborted partial results.  Pin f and c before calling
/// when the limit is active — the recovery garbage-collects.
Edge run_limited(Manager& mgr, const minimize::Heuristic& h,
                 const ResourceLimits& budget, Edge f, Edge c,
                 bool* tripped) {
  mgr.governor().set_limits(budget);
  pin_for_unwind(f);  // the catch handler reads f back after unwinding
  Edge g;
  try {
    g = h.run(mgr, f, c);
  } catch (const ResourceExhausted&) {
    *tripped = true;
    g = f;
    mgr.governor().clear();
    mgr.garbage_collect();
  }
  mgr.governor().clear();
  // bddmin-lint: allow(R4) -- on the GC path g aliases f, pinned above via pin_for_unwind
  return g;
}

int cmd_minimize(int argc, char** argv) {
  const pla::Pla circuit = pla::parse_pla(slurp(argv[0]), argv[0]);
  Manager mgr(circuit.num_inputs);
  std::vector<std::uint32_t> vars(circuit.num_inputs);
  std::iota(vars.begin(), vars.end(), 0u);
  const auto specs = pla::output_functions(mgr, circuit, vars);

  auto set = minimize::all_heuristics();
  if (const char* name = flag_value(argc, argv, "--heuristic")) {
    set = {minimize::heuristic_by_name(set, name)};
  }
  ResourceLimits budget;
  budget.hard_node_limit =
      static_cast<std::size_t>(size_flag(argc, argv, "--node-limit"));
  // Pin the specs: recovering from a quota trip garbage-collects, and the
  // f/c edges must survive it.
  std::vector<Bdd> spec_pins;
  for (const auto& spec : specs) {
    spec_pins.emplace_back(mgr, spec.f);
    spec_pins.emplace_back(mgr, spec.c);
  }
  std::printf("%s: %u inputs, %u outputs, %zu cubes\n", circuit.name.c_str(),
              circuit.num_inputs, circuit.num_outputs, circuit.cubes.size());
  std::printf("%-10s", "output");
  for (const auto& h : set) std::printf(" %8s", h.name.c_str());
  std::printf("\n");
  std::vector<std::vector<Bdd>> covers(set.size());
  std::size_t trips = 0;
  for (unsigned j = 0; j < circuit.num_outputs; ++j) {
    const std::string label = j < circuit.output_labels.size()
                                  ? circuit.output_labels[j]
                                  : "o" + std::to_string(j);
    std::printf("%-10s", label.c_str());
    for (std::size_t h = 0; h < set.size(); ++h) {
      bool tripped = false;
      const Edge g =
          run_limited(mgr, set[h], budget, specs[j].f, specs[j].c, &tripped);
      trips += tripped ? 1 : 0;
      covers[h].emplace_back(mgr, g);
      std::printf(tripped ? " %7zu*" : " %8zu", covers[h].back().size());
    }
    std::printf("\n");
  }
  if (trips > 0) {
    std::printf("* %zu run(s) hit the node limit and degraded to f\n", trips);
  }
  std::printf("%-10s", "forest");
  for (std::size_t h = 0; h < set.size(); ++h) {
    std::vector<Edge> roots;
    for (const Bdd& b : covers[h]) roots.push_back(b.edge());
    std::printf(" %8zu", count_nodes(mgr, roots));
  }
  std::printf("\n");
  if (has_flag(argc, argv, "--sift")) {
    mgr.reorder_sift();
    std::printf("%-10s", "+sift");
    for (std::size_t h = 0; h < set.size(); ++h) {
      std::vector<Edge> roots;
      for (const Bdd& b : covers[h]) roots.push_back(b.edge());
      std::printf(" %8zu", count_nodes(mgr, roots));
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_equiv(int argc, char** argv) {
  const fsm::MachineSpec a =
      fsm::spec_from_fsm(fsm::parse_kiss2(slurp(argv[0]), argv[0]));
  const fsm::MachineSpec b =
      fsm::spec_from_fsm(fsm::parse_kiss2(slurp(argv[1]), argv[1]));
  fsm::EquivOptions opts;
  harness::Interceptor interceptor(minimize::all_heuristics());
  const bool stats = has_flag(argc, argv, "--stats");
  if (stats) {
    opts.minimize = interceptor.hook();
    opts.image_method = fsm::ImageMethod::kFunctional;
  }
  const fsm::EquivResult result = fsm::check_equivalence(a, b, opts);
  std::printf("%s\n", result.equivalent ? "EQUIVALENT" : "NOT EQUIVALENT");
  std::printf("iterations=%u product_states=%.0f\n", result.iterations,
              result.product_states);
  if (result.counterexample) {
    std::printf("distinguishing inputs:");
    for (const auto& step : result.counterexample->inputs) {
      std::printf(" ");
      for (const bool bit : step) std::printf("%d", bit ? 1 : 0);
    }
    std::printf("\n");
  }
  if (stats && !interceptor.records().empty()) {
    const harness::Table3 table =
        harness::aggregate_table3(interceptor.names(), interceptor.records());
    std::printf("\n%s", harness::render_table3(table).c_str());
  }
  return result.equivalent ? 0 : 2;
}

int cmd_reach(int /*argc*/, char** argv) {
  const fsm::Fsm machine = fsm::parse_kiss2(slurp(argv[0]), argv[0]);
  const fsm::MachineSpec spec = fsm::spec_from_fsm(machine);
  Manager mgr(spec.num_inputs + 2 * spec.num_state_bits);
  std::vector<std::uint32_t> in(spec.num_inputs);
  std::iota(in.begin(), in.end(), 0u);
  std::vector<std::uint32_t> st;
  std::vector<std::uint32_t> nx;
  for (unsigned k = 0; k < spec.num_state_bits; ++k) {
    st.push_back(spec.num_inputs + 2 * k);
    nx.push_back(spec.num_inputs + 2 * k + 1);
  }
  const fsm::SymbolicFsm sym = spec.build(mgr, in, st);
  const fsm::ReachResult result = fsm::reachable_states(mgr, sym, nx);
  std::printf("%s: %zu declared states, %.0f reachable encodings, %u BFS "
              "steps\n",
              machine.name.c_str(), machine.states.size(),
              sat_count(mgr, result.reached.edge(),
                        static_cast<unsigned>(st.size())),
              result.iterations);
  std::size_t before = 0;
  std::size_t after = 0;
  for (const Edge delta : sym.next_state) {
    before += count_nodes(mgr, delta);
    after += count_nodes(
        mgr, minimize::restrict_dc(mgr, delta, result.reached.edge()));
  }
  std::printf("next-state logic vs unreachable don't cares: %zu -> %zu "
              "nodes\n",
              before, after);
  return 0;
}

int cmd_audit(int argc, char** argv) {
  const pla::Pla circuit = pla::parse_pla(slurp(argv[0]), argv[0]);
  Manager mgr(circuit.num_inputs);
  std::vector<std::uint32_t> vars(circuit.num_inputs);
  std::iota(vars.begin(), vars.end(), 0u);
  const auto specs = pla::output_functions(mgr, circuit, vars);

  auto level = analysis::AuditLevel::kCover;
  if (const char* raw = flag_value(argc, argv, "--level")) {
    const int n = std::atoi(raw);
    level = static_cast<analysis::AuditLevel>(std::clamp(n, 0, 4));
  }
  std::printf("%s: %u inputs, %u outputs, audit level %d\n",
              circuit.name.c_str(), circuit.num_inputs, circuit.num_outputs,
              static_cast<int>(level));

  // Exercise the manager the way real workloads do: every heuristic over
  // every output (pinned so GC/sifting see live roots), plus a sift pass
  // on request — an audit of a busy table is worth more than of an idle
  // one.
  const auto set = minimize::all_heuristics();
  ResourceLimits budget;
  budget.hard_node_limit =
      static_cast<std::size_t>(size_flag(argc, argv, "--node-limit"));
  std::vector<Bdd> pinned;
  std::size_t trips = 0;
  for (const auto& spec : specs) {
    pinned.emplace_back(mgr, spec.f);
    pinned.emplace_back(mgr, spec.c);
    for (const auto& h : set) {
      bool tripped = false;
      pinned.emplace_back(
          mgr, run_limited(mgr, h, budget, spec.f, spec.c, &tripped));
      trips += tripped ? 1 : 0;
    }
  }
  if (trips > 0) {
    std::printf("resource trips: %zu (degraded to f; the audit below "
                "verifies the abort left the manager consistent)\n",
                trips);
  }
  if (has_flag(argc, argv, "--sift")) mgr.reorder_sift();

  if (const char* name = flag_value(argc, argv, "--mutate")) {
    const analysis::Mutation m = analysis::mutation_from_name(name);
    const analysis::MutationResult injected = analysis::inject(mgr, m);
    if (!injected.applied) {
      std::fprintf(stderr, "mutation %s found no eligible target\n", name);
      return 1;
    }
    std::printf("injected: %s\n", injected.description.c_str());
  }

  analysis::AuditOptions opts;
  opts.level = level;
  analysis::AuditReport report = analysis::audit_manager(mgr, opts);
  if (level >= analysis::AuditLevel::kCover) {
    for (std::size_t j = 0; j < specs.size(); ++j) {
      const std::string label_prefix =
          j < circuit.output_labels.size() ? circuit.output_labels[j]
                                           : "o" + std::to_string(j);
      analysis::AuditReport covers = analysis::audit_heuristic_contracts(
          mgr, specs[j].f, specs[j].c, set);
      for (auto& finding : covers.findings) {
        report.add(finding.category, label_prefix + ": " + finding.message);
      }
      report.covers_checked += covers.covers_checked;
    }
  }
  std::printf("%s", report.summary().c_str());
  return report.ok() ? 0 : 3;
}

long int_flag(int argc, char** argv, const char* flag, long fallback) {
  const char* raw = flag_value(argc, argv, flag);
  return raw ? std::atol(raw) : fallback;
}

/// The job set of `batch` / `stats`: PLA outputs or seeded random pairs.
std::vector<engine::Job> batch_jobs(int argc, char** argv) {
  if (const char* path = flag_value(argc, argv, "--pla")) {
    return engine::pla_jobs(pla::parse_pla(slurp(path), path));
  }
  const unsigned count =
      static_cast<unsigned>(int_flag(argc, argv, "--jobs", 32));
  const unsigned vars = static_cast<unsigned>(int_flag(argc, argv, "--vars", 8));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(int_flag(argc, argv, "--seed", 1));
  const char* draw = flag_value(argc, argv, "--density");
  const double density = draw ? std::atof(draw) : 0.3;
  return engine::random_jobs(count, vars, density, seed);
}

engine::EngineOptions batch_options(int argc, char** argv) {
  engine::EngineOptions opts;
  opts.num_threads =
      static_cast<unsigned>(int_flag(argc, argv, "--threads", 0));
  if (const char* name = flag_value(argc, argv, "--heuristic")) {
    opts.heuristic = name;
  }
  opts.audit_level = static_cast<analysis::AuditLevel>(
      std::clamp<long>(int_flag(argc, argv, "--audit-level", 0), 0, 4));
  opts.job_timeout_seconds = int_flag(argc, argv, "--timeout-ms", 0) / 1000.0;
  if (has_flag(argc, argv, "--lower-bound")) opts.lower_bound_cubes = 1000;
  opts.node_limit =
      static_cast<std::size_t>(size_flag(argc, argv, "--node-limit"));
  opts.step_limit = size_flag(argc, argv, "--step-limit");
  if (const char* name = flag_value(argc, argv, "--fallback-heuristic")) {
    opts.fallback_heuristic = name;
  }
  opts.max_retries =
      static_cast<unsigned>(int_flag(argc, argv, "--max-retries", 0));
  opts.backoff_ms =
      static_cast<unsigned>(int_flag(argc, argv, "--backoff-ms", 0));
  opts.hang_timeout_seconds =
      int_flag(argc, argv, "--hang-timeout-ms", 0) / 1000.0;
  // Sharding defaults ON at the CLI (the library default is off so
  // embedders opt in); precedence is flag > environment > default.
  opts.shard_cost =
      harness::env_u64("BDDMIN_SHARD_COST", engine::kDefaultShardCost);
  if (const char* raw = flag_value(argc, argv, "--shard-cost")) {
    opts.shard_cost = std::strtoull(raw, nullptr, 10);
  }
  if (has_flag(argc, argv, "--no-shard") ||
      harness::env_u64("BDDMIN_NO_SHARD", 0) != 0) {
    opts.shard_cost = 0;
  }
  opts.journal_group_commit =
      has_flag(argc, argv, "--journal-group-commit") ||
      harness::env_u64("BDDMIN_JOURNAL_GROUP_COMMIT", 0) != 0;
  return opts;
}

/// One histogram summary object for the --metrics JSON: count/sum plus
/// the deterministic nearest-rank percentiles and the max bucket bound.
void metrics_histogram(harness::JsonWriter& w, const std::string& name,
                       const telemetry::HistogramSnapshot& s) {
  w.key(name).begin_object();
  w.kv("count", s.count);
  w.kv("sum", s.sum);
  w.kv("mean", s.mean());
  w.kv("p50", s.quantile(0.50));
  w.kv("p90", s.quantile(0.90));
  w.kv("p99", s.quantile(0.99));
  w.kv("max", s.max_bound());
  w.end_object();
}

/// The scheduler-metrics JSON consumed by tools/scaling_report.py:
/// latency/steps/steal/queue-depth histogram summaries, steal totals,
/// the per-worker busy/steal/sink/idle decomposition and (schema 2) the
/// shard plan plus the scheduler-overhead split: heuristic_seconds is
/// the summed per-heuristic minimize time, so busy - heuristic is the
/// per-job fixed cost (decode, reset, governor, validation, delivery).
std::string metrics_json(const engine::BatchReport& report) {
  const engine::BatchMetrics& m = report.metrics;
  double heuristic_seconds = 0.0;
  for (const engine::JobOutcome& o : report.outcomes) {
    for (const engine::HeuristicResult& r : o.results) {
      heuristic_seconds += r.seconds;
    }
  }
  double busy_seconds = 0.0;
  for (const engine::WorkerUtilization& u : m.workers) {
    busy_seconds += u.busy_seconds;
  }
  harness::JsonWriter w;
  w.begin_object();
  w.kv("schema_version", 2);
  w.kv("telemetry_enabled", telemetry::kHistogramsEnabled);
  w.kv("threads", report.num_threads);
  w.kv("jobs", static_cast<std::uint64_t>(report.outcomes.size()));
  w.kv("wall_seconds", report.wall_seconds);
  w.key("sharding").begin_object();
  w.kv("shards", m.shards);
  w.kv("shard_cost_budget", m.shard_cost_budget);
  w.kv("warm_jobs", m.warm_jobs);
  w.kv("cold_jobs", m.cold_jobs);
  metrics_histogram(w, "shard_jobs", m.shard_jobs);
  metrics_histogram(w, "shard_cost", m.shard_cost);
  w.end_object();
  w.key("overhead").begin_object();
  w.kv("busy_seconds", busy_seconds);
  w.kv("heuristic_seconds", heuristic_seconds);
  w.kv("overhead_fraction",
       busy_seconds > 0.0
           ? std::max(0.0, 1.0 - heuristic_seconds / busy_seconds)
           : 0.0);
  w.end_object();
  metrics_histogram(w, "job_latency_ns", m.job_latency_ns);
  metrics_histogram(w, "job_steps", m.job_steps);
  metrics_histogram(w, "steal_search_ns", m.steal_search_ns);
  metrics_histogram(w, "queue_depth", m.queue_depth);
  w.kv("steal_attempts", m.steal_attempts);
  w.kv("steals", m.steals);
  w.kv("steal_success_rate",
       m.steal_attempts == 0
           ? 0.0
           : static_cast<double>(m.steals) /
                 static_cast<double>(m.steal_attempts));
  w.key("workers").begin_array();
  for (const engine::WorkerUtilization& u : m.workers) {
    w.begin_object();
    w.kv("worker", u.worker);
    w.kv("busy_seconds", u.busy_seconds);
    w.kv("steal_seconds", u.steal_seconds);
    w.kv("sink_seconds", u.sink_seconds);
    w.kv("idle_seconds", u.idle_seconds);
    w.kv("jobs", u.jobs);
    w.kv("steal_attempts", u.steal_attempts);
    w.kv("steals", u.steals);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

int batch_exit_code(const engine::BatchReport& report) {
  // 0: every job clean.  3: at least one genuine bug.  4: no bugs, but
  // some jobs degraded (resource-limit / timeout / cancelled /
  // quarantined-by-the-watchdog).
  if (report.count(engine::JobStatus::kError) > 0) return 3;
  return report.count(engine::JobStatus::kOk) == report.outcomes.size() ? 0 : 4;
}

int cmd_batch(int argc, char** argv) {
  engine::EngineOptions opts = batch_options(argc, argv);
  const char* journal_path = flag_value(argc, argv, "--journal");
  const bool resume = has_flag(argc, argv, "--resume");
  if (resume && journal_path == nullptr) {
    std::fprintf(stderr, "error: --resume requires --journal PATH\n");
    return 1;
  }
  engine::JournalContents resumed;
  std::vector<engine::Job> jobs;
  if (resume) {
    resumed = engine::read_journal(journal_path);
    for (const std::string& warning : resumed.warnings) {
      std::fprintf(stderr, "journal: %s\n", warning.c_str());
    }
    jobs = resumed.jobs;
    opts.resume = &resumed;
    std::printf("resuming %s: %zu of %zu jobs already complete\n",
                journal_path, resumed.completed_count(), jobs.size());
  } else {
    jobs = batch_jobs(argc, argv);
  }
  if (journal_path != nullptr) opts.journal_path = journal_path;
  if (has_flag(argc, argv, "--progress")) {
    // TTY policy lives here, not in the engine: a redirected stderr gets
    // no control-character churn unless BDDMIN_PROGRESS=1 forces it
    // (which is also how the tests capture the line).
    opts.progress = isatty(fileno(stderr)) != 0 ||
                    harness::env_u64("BDDMIN_PROGRESS", 0) != 0;
  }
  const engine::BatchReport report = engine::run_batch(jobs, opts);
  std::size_t total_f = 0;
  std::size_t total_min = 0;
  std::size_t peak_live = 0;
  for (const engine::JobOutcome& o : report.outcomes) {
    total_f += o.f_size;
    total_min += o.min_size;
    peak_live = std::max(peak_live, o.peak_live);
  }
  std::printf("batch: %zu jobs, %zu heuristics, %u threads, %.3fs\n",
              report.outcomes.size(), report.names.size(),
              report.num_threads, report.wall_seconds);
  std::printf(
      "status: ok=%zu timeout=%zu cancelled=%zu error=%zu resource-limit=%zu"
      " quarantined=%zu\n",
      report.count(engine::JobStatus::kOk),
      report.count(engine::JobStatus::kTimeout),
      report.count(engine::JobStatus::kCancelled),
      report.count(engine::JobStatus::kError),
      report.count(engine::JobStatus::kResourceLimit),
      report.count(engine::JobStatus::kQuarantined));
  std::printf("nodes: f=%zu best=%zu peak_live=%zu\n", total_f, total_min,
              peak_live);
  const std::string csv =
      engine::report_csv(report, has_flag(argc, argv, "--timings"),
                         has_flag(argc, argv, "--counters"),
                         has_flag(argc, argv, "--attempts"));
  if (const char* path = flag_value(argc, argv, "--csv")) {
    if (!harness::write_text_file(path, csv)) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::printf("report written to %s (%zu rows)\n", path,
                report.outcomes.size());
  } else {
    std::printf("%s", csv.c_str());
  }
  if (const char* path = flag_value(argc, argv, "--metrics")) {
    if (!harness::write_text_file(path, metrics_json(report))) {
      std::fprintf(stderr, "cannot write %s\n", path);
      return 1;
    }
    std::printf("metrics written to %s\n", path);
  }
  return batch_exit_code(report);
}

int cmd_stats(int argc, char** argv) {
  const std::vector<engine::Job> jobs = batch_jobs(argc, argv);
  const engine::EngineOptions opts = batch_options(argc, argv);
  telemetry::global().reset();      // expose only this batch's work
  telemetry::histograms().reset();  // same for the histogram bank
  const engine::BatchReport report = engine::run_batch(jobs, opts);
  std::printf("%s",
              telemetry::prometheus_text(telemetry::global().snapshot()).c_str());
  std::printf("%s",
              telemetry::histogram_prometheus_text(telemetry::histograms())
                  .c_str());
  return batch_exit_code(report);
}

int cmd_failpoints(int argc, char** argv) {
  // Names only by default so shell loops (the CI sweep) can consume the
  // output directly; --describe adds the catalog descriptions.
  const bool describe = has_flag(argc, argv, "--describe");
  for (const auto& entry : analysis::FailPointRegistry::catalog()) {
    if (describe) {
      std::printf("%-22s %s\n", entry.name, entry.description);
    } else {
      std::printf("%s\n", entry.name);
    }
  }
  return 0;
}

int cmd_stress(int argc, char** argv) {
  if (has_flag(argc, argv, "--list")) {
    for (const stress::StressFsm& fsm : stress::builtin_workloads()) {
      std::printf("%-10s %s\n", fsm.name.c_str(), fsm.description.c_str());
    }
    return 0;
  }
  const char* wname = flag_value(argc, argv, "--workload");
  const stress::StressFsm fsm =
      stress::workload_by_name(wname != nullptr ? wname : "mixed");
  stress::StressOptions opts;
  opts.seed = static_cast<std::uint64_t>(int_flag(argc, argv, "--seed", 1));
  opts.num_threads =
      static_cast<unsigned>(int_flag(argc, argv, "--threads", 4));
  opts.steps_per_thread =
      static_cast<std::size_t>(int_flag(argc, argv, "--steps", 32));
  if (const char* wall = flag_value(argc, argv, "--wall-seconds")) {
    opts.wall_budget_seconds = std::strtod(wall, nullptr);
  }
  opts.invariant_audit = static_cast<analysis::AuditLevel>(
      std::clamp<long>(int_flag(argc, argv, "--audit-level", 2), 0, 3));
  if (has_flag(argc, argv, "--no-minimize")) opts.minimize_failures = false;

  if (const char* raw = flag_value(argc, argv, "--replay")) {
    unsigned thread = 0;
    unsigned long long step = 0;
    if (std::sscanf(raw, "%u:%llu", &thread, &step) != 2) {
      std::fprintf(stderr, "error: --replay wants THREAD:STEP, got '%s'\n",
                   raw);
      return 1;
    }
    const std::optional<stress::StressFailure> failure = stress::replay(
        fsm, opts, thread, static_cast<std::size_t>(step));
    if (!failure.has_value()) {
      std::printf("replay clean: (seed=%llu thread=%u step=%llu) on '%s' "
                  "reproduced no failure\n",
                  static_cast<unsigned long long>(opts.seed), thread, step,
                  fsm.name.c_str());
      return 3;
    }
    std::printf("%s\n", failure->summary().c_str());
    return 0;
  }

  const stress::StressReport report = stress::run_stress(fsm, opts);
  std::printf("%s\n", report.summary().c_str());
  if (has_flag(argc, argv, "--expect-failure")) {
    if (report.ok()) {
      std::printf("expected a failure but the run came back clean\n");
      return 3;
    }
    for (const stress::StressFailure& f : report.failures) {
      if (!f.replayed) {
        std::printf("failure at thread=%u step=%llu did not replay "
                    "single-threaded\n",
                    f.at.thread,
                    static_cast<unsigned long long>(f.at.step));
        return 3;
      }
    }
    std::printf("expected failure caught and replayed single-threaded\n");
    return 0;
  }
  return report.ok() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 3 && std::strcmp(argv[1], "minimize") == 0) {
      return cmd_minimize(argc - 2, argv + 2);
    }
    if (argc >= 4 && std::strcmp(argv[1], "equiv") == 0) {
      return cmd_equiv(argc - 2, argv + 2);
    }
    if (argc >= 3 && std::strcmp(argv[1], "reach") == 0) {
      return cmd_reach(argc - 2, argv + 2);
    }
    if (argc >= 3 && std::strcmp(argv[1], "audit") == 0) {
      return cmd_audit(argc - 2, argv + 2);
    }
    if (argc >= 2 && std::strcmp(argv[1], "batch") == 0) {
      return cmd_batch(argc - 2, argv + 2);
    }
    if (argc >= 2 && std::strcmp(argv[1], "stats") == 0) {
      return cmd_stats(argc - 2, argv + 2);
    }
    if (argc >= 2 && std::strcmp(argv[1], "stress") == 0) {
      return cmd_stress(argc - 2, argv + 2);
    }
    if (argc >= 2 && std::strcmp(argv[1], "failpoints") == 0) {
      return cmd_failpoints(argc - 2, argv + 2);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage:\n"
               "  bddmin_cli minimize <circuit.pla> [--heuristic NAME] [--sift]"
               " [--node-limit N]\n"
               "  bddmin_cli equiv <a.kiss> <b.kiss> [--stats]\n"
               "  bddmin_cli reach <a.kiss>\n"
               "  bddmin_cli audit <circuit.pla> [--level N] [--mutate CLASS]"
               " [--sift] [--node-limit N]\n"
               "  bddmin_cli batch [--pla FILE] [--jobs N] [--vars K]"
               " [--density D] [--seed S]\n"
               "                   [--threads T] [--heuristic NAME]"
               " [--audit-level L]\n"
               "                   [--timeout-ms M] [--lower-bound]"
               " [--node-limit N] [--step-limit N]\n"
               "                   [--fallback-heuristic NAME]"
               " [--csv PATH] [--timings] [--counters]\n"
               "                   [--max-retries N] [--backoff-ms N]"
               " [--hang-timeout-ms N] [--attempts]\n"
               "                   [--journal PATH] [--resume] [--progress]"
               " [--metrics PATH]\n"
               "                   [--shard-cost C] [--no-shard]"
               " [--journal-group-commit]\n"
               "  bddmin_cli stats [batch flags]  (prints Prometheus-style"
               " telemetry counters + histograms)\n"
               "  bddmin_cli failpoints [--describe]  (lists the registered"
               " fault-injection points)\n"
               "  bddmin_cli stress [--workload NAME] [--seed S]"
               " [--threads T] [--steps K]\n"
               "                    [--wall-seconds W] [--audit-level L]"
               " [--no-minimize]\n"
               "                    [--list] [--replay T:K]"
               " [--expect-failure]\n");
  return 1;
}
