/// \file bddmin_cli.cpp
/// \brief Command-line front end.
///
/// ```
/// bddmin_cli minimize <circuit.pla> [--heuristic NAME] [--sift]
///     Minimize every output of an espresso PLA; prints per-output and
///     forest node counts for the chosen heuristic (default: all).
///
/// bddmin_cli equiv <a.kiss> <b.kiss> [--stats]
///     Product-machine equivalence; prints VERDICT and, for inequivalent
///     machines, a distinguishing input sequence.  --stats additionally
///     runs every minimization heuristic on the intercepted calls and
///     prints the Table-3 style summary.
///
/// bddmin_cli reach <a.kiss>
///     Reachable-state count and transition-function minimization
///     against the unreachable states.
/// ```
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "fsm/equiv.hpp"
#include "fsm/kiss.hpp"
#include "harness/intercept.hpp"
#include "harness/render.hpp"
#include "minimize/registry.hpp"
#include "pla/pla.hpp"

namespace {

using namespace bddmin;

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error(std::string("cannot open ") + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

const char* flag_value(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return nullptr;
}

int cmd_minimize(int argc, char** argv) {
  const pla::Pla circuit = pla::parse_pla(slurp(argv[0]), argv[0]);
  Manager mgr(circuit.num_inputs);
  std::vector<std::uint32_t> vars(circuit.num_inputs);
  std::iota(vars.begin(), vars.end(), 0u);
  const auto specs = pla::output_functions(mgr, circuit, vars);

  auto set = minimize::all_heuristics();
  if (const char* name = flag_value(argc, argv, "--heuristic")) {
    set = {minimize::heuristic_by_name(set, name)};
  }
  std::printf("%s: %u inputs, %u outputs, %zu cubes\n", circuit.name.c_str(),
              circuit.num_inputs, circuit.num_outputs, circuit.cubes.size());
  std::printf("%-10s", "output");
  for (const auto& h : set) std::printf(" %8s", h.name.c_str());
  std::printf("\n");
  std::vector<std::vector<Bdd>> covers(set.size());
  for (unsigned j = 0; j < circuit.num_outputs; ++j) {
    const std::string label = j < circuit.output_labels.size()
                                  ? circuit.output_labels[j]
                                  : "o" + std::to_string(j);
    std::printf("%-10s", label.c_str());
    for (std::size_t h = 0; h < set.size(); ++h) {
      covers[h].emplace_back(mgr, set[h].run(mgr, specs[j].f, specs[j].c));
      std::printf(" %8zu", covers[h].back().size());
    }
    std::printf("\n");
  }
  std::printf("%-10s", "forest");
  for (std::size_t h = 0; h < set.size(); ++h) {
    std::vector<Edge> roots;
    for (const Bdd& b : covers[h]) roots.push_back(b.edge());
    std::printf(" %8zu", count_nodes(mgr, roots));
  }
  std::printf("\n");
  if (has_flag(argc, argv, "--sift")) {
    mgr.reorder_sift();
    std::printf("%-10s", "+sift");
    for (std::size_t h = 0; h < set.size(); ++h) {
      std::vector<Edge> roots;
      for (const Bdd& b : covers[h]) roots.push_back(b.edge());
      std::printf(" %8zu", count_nodes(mgr, roots));
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_equiv(int argc, char** argv) {
  const fsm::MachineSpec a =
      fsm::spec_from_fsm(fsm::parse_kiss2(slurp(argv[0]), argv[0]));
  const fsm::MachineSpec b =
      fsm::spec_from_fsm(fsm::parse_kiss2(slurp(argv[1]), argv[1]));
  fsm::EquivOptions opts;
  harness::Interceptor interceptor(minimize::all_heuristics());
  const bool stats = has_flag(argc, argv, "--stats");
  if (stats) {
    opts.minimize = interceptor.hook();
    opts.image_method = fsm::ImageMethod::kFunctional;
  }
  const fsm::EquivResult result = fsm::check_equivalence(a, b, opts);
  std::printf("%s\n", result.equivalent ? "EQUIVALENT" : "NOT EQUIVALENT");
  std::printf("iterations=%u product_states=%.0f\n", result.iterations,
              result.product_states);
  if (result.counterexample) {
    std::printf("distinguishing inputs:");
    for (const auto& step : result.counterexample->inputs) {
      std::printf(" ");
      for (const bool bit : step) std::printf("%d", bit ? 1 : 0);
    }
    std::printf("\n");
  }
  if (stats && !interceptor.records().empty()) {
    const harness::Table3 table =
        harness::aggregate_table3(interceptor.names(), interceptor.records());
    std::printf("\n%s", harness::render_table3(table).c_str());
  }
  return result.equivalent ? 0 : 2;
}

int cmd_reach(int argc, char** argv) {
  const fsm::Fsm machine = fsm::parse_kiss2(slurp(argv[0]), argv[0]);
  const fsm::MachineSpec spec = fsm::spec_from_fsm(machine);
  Manager mgr(spec.num_inputs + 2 * spec.num_state_bits);
  std::vector<std::uint32_t> in(spec.num_inputs);
  std::iota(in.begin(), in.end(), 0u);
  std::vector<std::uint32_t> st;
  std::vector<std::uint32_t> nx;
  for (unsigned k = 0; k < spec.num_state_bits; ++k) {
    st.push_back(spec.num_inputs + 2 * k);
    nx.push_back(spec.num_inputs + 2 * k + 1);
  }
  const fsm::SymbolicFsm sym = spec.build(mgr, in, st);
  const fsm::ReachResult result = fsm::reachable_states(mgr, sym, nx);
  std::printf("%s: %zu declared states, %.0f reachable encodings, %u BFS "
              "steps\n",
              machine.name.c_str(), machine.states.size(),
              sat_count(mgr, result.reached.edge(),
                        static_cast<unsigned>(st.size())),
              result.iterations);
  std::size_t before = 0;
  std::size_t after = 0;
  for (const Edge delta : sym.next_state) {
    before += count_nodes(mgr, delta);
    after += count_nodes(
        mgr, minimize::restrict_dc(mgr, delta, result.reached.edge()));
  }
  std::printf("next-state logic vs unreachable don't cares: %zu -> %zu "
              "nodes\n",
              before, after);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 3 && std::strcmp(argv[1], "minimize") == 0) {
      return cmd_minimize(argc - 2, argv + 2);
    }
    if (argc >= 4 && std::strcmp(argv[1], "equiv") == 0) {
      return cmd_equiv(argc - 2, argv + 2);
    }
    if (argc >= 3 && std::strcmp(argv[1], "reach") == 0) {
      return cmd_reach(argc - 2, argv + 2);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage:\n"
               "  bddmin_cli minimize <circuit.pla> [--heuristic NAME] [--sift]\n"
               "  bddmin_cli equiv <a.kiss> <b.kiss> [--stats]\n"
               "  bddmin_cli reach <a.kiss>\n");
  return 1;
}
