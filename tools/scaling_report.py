#!/usr/bin/env python3
"""Diagnose batch-engine scaling from a Chrome trace plus metrics JSON.

Consumes the artifacts one traced batch run produces:

  * a Chrome trace (BDDMIN_TRACE=trace.json, validated by check_trace.py),
    whose worker tracks ("worker-0", "worker-1", ...) carry one "job:*"
    span per job attempt and whose "run_batch" span bounds the batch;
  * optionally one or more --metrics files (bddmin_cli batch --metrics
    PATH), for the per-worker busy/steal/sink/idle decomposition, steal
    success rate, latency percentiles and (schema 2) the shard plan and
    scheduler-overhead split — given several (one per thread count, or a
    sharded/unsharded pair), the report compares them;
  * optionally --bench BENCH_batch.json (schema_version 3), for the
    measured speedup curve and the host's hardware_concurrency.

And emits a scaling diagnosis (stdout, plain text):

  * per-worker busy fraction over the run_batch window,
  * the measured serial fraction (wall time with <= 1 worker inside a
    job span) with an Amdahl fit: predicted vs actual speedup per
    thread count,
  * steal attempt/success stats and sampled queue-depth range,
  * a scheduler-overhead section: the per-job fixed cost (busy time not
    spent inside a heuristic) against the minimize time proper, plus
    shard-plan stats and, when both a sharded and an unsharded metrics
    file are given, the wall/overhead deltas between them,
  * the top-k longest serial sections with the job that was running,
  * a named bottleneck consistent with the numbers — CPU
    oversubscription, measured serial fraction, worker starvation
    (dominant idle/steal state) or per-job scheduler overhead.

Stdlib only, mirroring check_trace.py.  Exit 0 on success (a diagnosis
was produced), 1 on unreadable/malformed input.
"""
import argparse
import json
import sys


def fail(msg: str) -> int:
    print(f"scaling_report: {msg}", file=sys.stderr)
    return 1


def load_json(path: str):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def worker_tracks(events):
    """Map (pid, tid) -> worker name for tracks named worker-*."""
    tracks = {}
    for ev in events:
        if (ev.get("ph") == "M" and ev.get("name") == "thread_name"
                and str(ev.get("args", {}).get("name", ""))
                .startswith("worker-")):
            tracks[(ev.get("pid"), ev.get("tid"))] = ev["args"]["name"]
    return tracks


def batch_window(events):
    """The [start, end) of the outermost run_batch span (us)."""
    best = None
    for ev in events:
        if ev.get("ph") == "X" and ev.get("name") == "run_batch":
            start = float(ev["ts"])
            end = start + float(ev.get("dur", 0))
            if best is None or end - start > best[1] - best[0]:
                best = (start, end)
    return best


def busy_intervals(events, tracks, window):
    """Top-level job spans per worker, clipped to the batch window."""
    spans = {name: [] for name in tracks.values()}
    for ev in events:
        track = (ev.get("pid"), ev.get("tid"))
        if (ev.get("ph") != "X" or track not in tracks
                or not str(ev.get("name", "")).startswith("job:")):
            continue
        start = float(ev["ts"])
        end = start + float(ev.get("dur", 0))
        if window:
            start = max(start, window[0])
            end = min(end, window[1])
        if end > start:
            spans[tracks[track]].append((start, end, ev["name"][4:]))
    # Nested retries of one job produce nested job spans; merging per
    # worker keeps each instant counted once.
    merged = {}
    for name, ivs in spans.items():
        ivs.sort()
        out = []
        for start, end, job in ivs:
            if out and start <= out[-1][1]:
                out[-1] = (out[-1][0], max(out[-1][1], end), out[-1][2])
            else:
                out.append((start, end, job))
        merged[name] = out
    return merged


def concurrency_sweep(merged, window):
    """Time spent at each busy-worker concurrency level, plus the serial
    sections (concurrency <= 1) annotated with the running job."""
    points = []  # (ts, +1/-1, job)
    for ivs in merged.values():
        for start, end, job in ivs:
            points.append((start, 1, job))
            points.append((end, -1, job))
    points.sort(key=lambda p: (p[0], -p[1]))
    time_at = {}
    serial_sections = []  # (duration, start, jobs active)
    level = 0
    active = {}
    prev = window[0]
    section_start = window[0]
    section_jobs = set()

    def close_section(ts):
        nonlocal section_start, section_jobs
        if ts > section_start:
            serial_sections.append(
                (ts - section_start, section_start,
                 sorted(section_jobs) or ["<no job running>"]))
        section_start = ts
        section_jobs = set()

    for ts, delta, job in points:
        ts = min(max(ts, window[0]), window[1])
        if ts > prev:
            time_at[level] = time_at.get(level, 0.0) + (ts - prev)
        if level <= 1 and ts > prev:
            section_jobs.update(active)
        was_serial = level <= 1
        if delta > 0:
            active[job] = active.get(job, 0) + 1
        else:
            active[job] = active.get(job, 1) - 1
            if active[job] <= 0:
                del active[job]
        level += delta
        now_serial = level <= 1
        if was_serial and not now_serial:
            close_section(ts)
        elif not was_serial and now_serial:
            section_start = ts
            section_jobs = set(active)
        prev = ts
    if prev < window[1]:
        time_at[level] = time_at.get(level, 0.0) + (window[1] - prev)
        if level <= 1:
            section_jobs.update(active)
    if level <= 1:
        close_section(window[1])
    serial_sections.sort(reverse=True)
    return time_at, serial_sections


def amdahl(serial_fraction, n):
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / n)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace JSON of a batch run")
    parser.add_argument("--metrics", action="append", default=[],
                        metavar="PATH",
                        help="metrics JSON from bddmin_cli batch --metrics "
                             "(repeatable: one per thread count)")
    parser.add_argument("--bench", metavar="PATH",
                        help="BENCH_batch.json for the speedup curve")
    parser.add_argument("--top", type=int, default=5, metavar="K",
                        help="serial sections to list (default: 5)")
    args = parser.parse_args()

    try:
        doc = load_json(args.trace)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {args.trace}: {e}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail('"traceEvents" missing or empty')

    tracks = worker_tracks(events)
    if not tracks:
        return fail("no worker-* tracks — was the trace taken on a batch "
                    "run with BDDMIN_TRACE set?")
    window = batch_window(events)
    if window is None:
        return fail('no "run_batch" span in the trace')
    wall_us = window[1] - window[0]
    if wall_us <= 0:
        return fail("empty run_batch window")

    merged = busy_intervals(events, tracks, window)
    num_workers = len(tracks)
    print(f"scaling report: {num_workers} worker(s), "
          f"batch window {wall_us / 1e6:.3f}s")
    print()
    print("per-worker busy fraction (trace job spans / batch window):")
    total_busy = 0.0
    for name in sorted(merged, key=lambda n: int(n.split("-")[1])):
        busy = sum(end - start for start, end, _ in merged[name])
        total_busy += busy
        jobs = len(merged[name])
        print(f"  {name:<10} busy={busy / wall_us:6.1%}  "
              f"job_spans={jobs}")
    avg_busy = total_busy / (wall_us * num_workers)
    print(f"  aggregate   busy={avg_busy:6.1%} of {num_workers} worker(s)")

    time_at, serial_sections = concurrency_sweep(merged, window)
    serial_us = sum(t for lvl, t in time_at.items() if lvl <= 1)
    serial_fraction = serial_us / wall_us
    print()
    print("concurrency profile (share of batch window at each busy-worker "
          "count):")
    for lvl in sorted(time_at):
        print(f"  {lvl} busy: {time_at[lvl] / wall_us:6.1%}")
    print(f"measured serial fraction (<= 1 busy): {serial_fraction:.1%}")

    # Amdahl fit against the actual speedup curve, when available.
    bench = None
    if args.bench:
        try:
            bench = load_json(args.bench)
        except (OSError, json.JSONDecodeError) as e:
            return fail(f"cannot load {args.bench}: {e}")
        print()
        print("Amdahl fit (serial fraction from the trace) vs measured:")
        print(f"  {'threads':>8} {'predicted':>10} {'actual':>10}")
        for run in bench.get("runs", []):
            n = run.get("threads", 1)
            predicted = amdahl(serial_fraction, max(1, n))
            print(f"  {n:>8} {predicted:>9.2f}x "
                  f"{run.get('speedup', 0.0):>9.2f}x")

    # Steal and queue-depth stats: prefer the metrics files, fall back to
    # counting trace instants.
    metrics = []
    for path in args.metrics:
        try:
            metrics.append(load_json(path))
        except (OSError, json.JSONDecodeError) as e:
            return fail(f"cannot load {path}: {e}")
    steal_instants = sum(1 for ev in events
                        if ev.get("ph") == "i" and ev.get("name") == "steal")
    depth_samples = [v for ev in events if ev.get("ph") == "C"
                     and ev.get("name") == "queue_depth"
                     for v in ev.get("args", {}).values()]
    print()

    def worker_states(m, w):
        """busy/steal/sink/idle fractions of one worker, whichever schema:
        *_seconds (bddmin_cli --metrics) or *_fraction (BENCH runs)."""
        wall = m.get("wall_seconds", 0.0)
        states = {}
        for state in ("busy", "steal", "sink", "idle"):
            if f"{state}_fraction" in w:
                states[state] = w[f"{state}_fraction"]
            else:
                states[state] = (w.get(f"{state}_seconds", 0.0) / wall
                                 if wall > 0 else 0.0)
        return states

    if metrics:
        print("scheduler metrics (--metrics):")
        for m in metrics:
            rate = m.get("steal_success_rate", 0.0)
            lat = m.get("job_latency_ns", {})
            print(f"  threads={m.get('threads')}: "
                  f"steals {m.get('steals')}/{m.get('steal_attempts')} "
                  f"({rate:.1%} success), "
                  f"latency p50={lat.get('p50', 0) / 1e6:.2f}ms "
                  f"p99={lat.get('p99', 0) / 1e6:.2f}ms")
            for w in m.get("workers", []):
                states = worker_states(m, w)
                dominant = max(states, key=states.get)
                print(f"    worker-{w.get('worker')}: "
                      + " ".join(f"{k}={v:.1%}" for k, v in states.items())
                      + f"  dominant={dominant}")
    else:
        print(f"steal instants in trace: {steal_instants}")
    if depth_samples:
        print(f"queue-depth samples: {len(depth_samples)}, "
              f"min={min(depth_samples)} max={max(depth_samples)} "
              f"last={depth_samples[-1]}")

    # ---- Scheduler overhead: per-job fixed cost vs minimize time, from
    # the schema-2 "overhead"/"sharding" objects. ------------------------
    overhead_runs = [m for m in metrics if "overhead" in m]
    if overhead_runs:
        print()
        print("scheduler overhead (per-job fixed cost vs minimize time):")
        for m in overhead_runs:
            ov = m["overhead"]
            sh = m.get("sharding", {})
            jobs = m.get("jobs", 0)
            busy = ov.get("busy_seconds", 0.0)
            heur = ov.get("heuristic_seconds", 0.0)
            frac = ov.get("overhead_fraction", 0.0)
            fixed_us = ((busy - heur) / jobs * 1e6) if jobs else 0.0
            mode = ("sharded" if sh.get("shard_cost_budget", 0)
                    else "unsharded")
            print(f"  threads={m.get('threads')} {mode}: "
                  f"busy={busy:.3f}s minimize={heur:.3f}s "
                  f"overhead={frac:.1%} (~{fixed_us:.0f}us fixed cost/job)")
            if sh:
                sj = sh.get("shard_jobs", {})
                print(f"    shards={sh.get('shards')} "
                      f"budget={sh.get('shard_cost_budget')} "
                      f"warm_jobs={sh.get('warm_jobs')} "
                      f"cold_jobs={sh.get('cold_jobs')} "
                      f"jobs/shard p50={sj.get('p50', 0)} "
                      f"max={sj.get('max', 0)}")
        sharded = [m for m in overhead_runs
                   if m.get("sharding", {}).get("shard_cost_budget", 0)]
        unsharded = [m for m in overhead_runs
                     if not m.get("sharding", {}).get("shard_cost_budget", 0)]
        if sharded and unsharded:
            s, u = sharded[0], unsharded[0]
            wall_s = s.get("wall_seconds", 0.0)
            wall_u = u.get("wall_seconds", 0.0)
            frac_s = s["overhead"].get("overhead_fraction", 0.0)
            frac_u = u["overhead"].get("overhead_fraction", 0.0)
            delta = (wall_u - wall_s) / wall_u if wall_u > 0 else 0.0
            print(f"  sharded vs unsharded: wall {wall_u:.3f}s -> "
                  f"{wall_s:.3f}s ({delta:+.1%}), overhead "
                  f"{frac_u:.1%} -> {frac_s:.1%}")

    print()
    print(f"top {args.top} longest serial sections (<= 1 busy worker):")
    for dur, start, jobs in serial_sections[:args.top]:
        label = ", ".join(jobs[:3]) + (" ..." if len(jobs) > 3 else "")
        print(f"  {dur / 1e6:9.4f}s at +{(start - window[0]) / 1e6:.3f}s: "
              f"{label}")

    # ---- The diagnosis: name one concrete bottleneck consistent with the
    # numbers above, in priority order. ---------------------------------
    print()
    print("diagnosis:")
    diagnosed = False
    hw = bench.get("hardware_concurrency", 0) if bench else 0
    actual = {run.get("threads"): run.get("speedup", 0.0)
              for run in (bench.get("runs", []) if bench else [])}
    worst = min((s for n, s in actual.items() if n and n > 1),
                default=None)
    if hw and num_workers > hw:
        # Busy fractions are wall-clock occupancy: descheduled workers
        # still count as "busy", so high busy + flat speedup = no cores.
        print(f"  * CPU oversubscription: {num_workers} workers share "
              f"{hw} hardware thread(s).  Aggregate busy occupancy is "
              f"{avg_busy:.1%} yet the measured speedup is flat"
              + (f" (worst {worst:.2f}x)" if worst is not None else "")
              + " — workers are timesharing cores, not running in "
              "parallel.  Per-job latency inflating with the thread "
              "count (see p99 above) is the signature.")
        diagnosed = True
    if serial_fraction > 0.25:
        predicted = amdahl(serial_fraction, num_workers)
        print(f"  * measured serial fraction {serial_fraction:.1%}: "
              f"Amdahl caps {num_workers} workers at "
              f"{predicted:.2f}x.  The longest serial sections above "
              "name the jobs to split or schedule first.")
        diagnosed = True
    for m in metrics:
        n = m.get("threads", 0)
        if n is None or n <= 1:
            continue
        idle = []
        for w in m.get("workers", []):
            states = worker_states(m, w)
            if states["idle"] > max(states["busy"], states["steal"],
                                    states["sink"]):
                idle.append(w)
        if idle:
            rate = m.get("steal_success_rate", 0.0)
            print(f"  * worker starvation at {n} threads: "
                  f"{len(idle)}/{len(m.get('workers', []))} workers are "
                  f"dominantly idle (steal success {rate:.1%}) — the "
                  "queue drains unevenly; check the depth curve above.")
            diagnosed = True
    # Tiny jobs make the per-job fixed cost (decode, reset, fsync,
    # scheduling) a first-order term: call it out whenever the p50 job
    # latency is under 1ms and the overhead split confirms it.
    for m in metrics:
        lat_p50_ns = m.get("job_latency_ns", {}).get("p50", 0)
        ov = m.get("overhead", {})
        frac = ov.get("overhead_fraction", 0.0)
        if 0 < lat_p50_ns < 1_000_000 and frac > 0.10:
            sh = m.get("sharding", {})
            budget = sh.get("shard_cost_budget", 0)
            remedy = ("raise --shard-cost so more jobs share a warm "
                      "manager" if budget else
                      "enable shard scheduling (--shard-cost) so the "
                      "fixed cost amortizes over a shard")
            print(f"  * per-job scheduler overhead: p50 job latency is "
                  f"{lat_p50_ns / 1e6:.2f}ms (< 1ms) and {frac:.1%} of "
                  f"busy time is outside the heuristics at "
                  f"threads={m.get('threads')} — the fixed per-job cost "
                  f"rivals the minimization itself; {remedy}.")
            diagnosed = True
            break
    if not diagnosed:
        if worst is not None and worst < 0.9 * num_workers:
            print("  * no dominant serial fraction or starvation, but the "
                  f"speedup ({worst:.2f}x) still trails {num_workers} "
                  "workers: suspect per-pop scheduler overhead (steal "
                  "sweeps, sink contention) — see the steal stats above.")
        else:
            print("  * no bottleneck apparent: workers are busy, the "
                  "serial fraction is small, and the speedup tracks the "
                  "worker count.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
