#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file emitted by BDDMIN_TRACE.

Checks (mirrors bddmin::telemetry::validate_trace, plus CI-side extras):
  * the file parses as JSON with a "traceEvents" array
  * every event has ph/pid/tid/ts/name; "X" events also carry dur >= 0
  * "C" (counter) events — e.g. the engine's queue-depth samples — carry
    a non-empty args object with only numeric values
  * spans on one (pid, tid) track are strictly nested — no partial overlap
  * with --min-tracks N: at least N distinct tids carry complete spans
    (proves the per-worker tracks are actually populated)
  * with --summary: per-track totals — top-level span time, span/instant/
    counter event counts — plus per-counter sample ranges (the queue-depth
    drain curve at a glance) and flight-recorder dump markers

Exit status 0 on a valid trace, 1 otherwise (message on stderr).
"""
import argparse
import json
import sys


def fail(msg: str) -> int:
    print(f"check_trace: {msg}", file=sys.stderr)
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the trace JSON file")
    parser.add_argument("--min-tracks", type=int, default=1, metavar="N",
                        help="require complete spans on at least N distinct "
                             "tids (default: 1)")
    parser.add_argument("--summary", action="store_true",
                        help="print per-track span time totals and counter "
                             "sample ranges after validating")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as e:
        return fail(f"cannot read {args.trace}: {e}")
    except json.JSONDecodeError as e:
        return fail(f"{args.trace} is not valid JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail('"traceEvents" missing or not an array')
    if not events:
        return fail("trace contains no events")

    spans_by_track = {}
    thread_names = {}
    instants_by_track = {}
    counters_by_track = {}
    counter_samples = {}  # counter name -> list of values
    dump_markers = 0
    instants = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            return fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("X", "i", "M", "C"):
            return fail(f"event {i} has unexpected ph {ph!r}")
        for key in ("pid", "tid", "name"):
            if key not in ev:
                return fail(f"event {i} ({ph}) lacks {key!r}")
        track = (ev["pid"], ev["tid"])
        if ph == "M":
            if ev["name"] == "thread_name":
                thread_names[track] = ev.get("args", {}).get("name", "")
            continue
        if "ts" not in ev:
            return fail(f"event {i} ({ph}) lacks 'ts'")
        if ph == "i":
            instants += 1
            instants_by_track[track] = instants_by_track.get(track, 0) + 1
            if ev["name"] == "flight_dump":
                dump_markers += 1
            continue
        if ph == "C":
            cargs = ev.get("args")
            if not isinstance(cargs, dict) or not cargs:
                return fail(f"counter event {i} lacks a non-empty 'args'")
            for key, value in cargs.items():
                if not isinstance(value, (int, float)):
                    return fail(f"counter event {i} arg {key!r} is not "
                                f"numeric: {value!r}")
                counter_samples.setdefault(ev["name"], []).append(value)
            counters_by_track[track] = counters_by_track.get(track, 0) + 1
            continue
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or dur < 0:
            return fail(f"complete event {i} has bad dur {dur!r}")
        spans_by_track.setdefault(track, []).append(
            (float(ev["ts"]), float(ev["ts"]) + float(dur), ev["name"]))

    # Strict nesting per track: sweep spans by start time and keep a stack
    # of open end times.  A span that starts inside an open span must also
    # end inside it.  Top-level (stack-empty) span time is the track's
    # self-reported occupancy, which --summary reports.
    toplevel_by_track = {}
    for track, spans in spans_by_track.items():
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        toplevel = 0.0
        for start, end, name in spans:
            while stack and stack[-1][0] <= start:
                stack.pop()
            if stack and end > stack[-1][0]:
                return fail(f"span {name!r} on tid {track[1]} overlaps "
                            f"{stack[-1][1]!r} without nesting")
            if not stack:
                toplevel += end - start
            stack.append((end, name))
        toplevel_by_track[track] = toplevel

    if len(spans_by_track) < args.min_tracks:
        named = {t: thread_names.get(t, "?") for t in spans_by_track}
        return fail(f"only {len(spans_by_track)} track(s) carry spans "
                    f"({named}), need {args.min_tracks}")

    counters = sum(counters_by_track.values())
    print(f"check_trace: OK — {sum(len(s) for s in spans_by_track.values())} "
          f"spans on {len(spans_by_track)} track(s), {instants} instants, "
          f"{counters} counter samples, {len(thread_names)} named threads")

    if args.summary:
        print("track summary (top-level span time, per track):")
        tracks = sorted(set(spans_by_track) | set(instants_by_track)
                        | set(counters_by_track))
        for track in tracks:
            name = thread_names.get(track, "?")
            spans = spans_by_track.get(track, [])
            print(f"  tid {track[1]:>8} {name:<12} "
                  f"spans={len(spans):<6} "
                  f"span_time={toplevel_by_track.get(track, 0.0) / 1e6:8.3f}s "
                  f"instants={instants_by_track.get(track, 0):<5} "
                  f"counters={counters_by_track.get(track, 0)}")
        for cname in sorted(counter_samples):
            values = counter_samples[cname]
            print(f"counter {cname!r}: {len(values)} samples, "
                  f"min={min(values)} max={max(values)} last={values[-1]}")
        if dump_markers:
            print(f"flight-recorder dump markers: {dump_markers}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
