/// \file reachability_frontiers.cpp
/// \brief Frontier minimization during symbolic reachability — the
/// application in which Coudert et al. posed the EBM problem.  For each
/// BFS step of a datapath machine we print the frontier BDD size, the
/// care onset, and the sizes chosen by constrain / restrict / osm_bt,
/// plus the second application from the paper's introduction: shrinking
/// the transition functions against the unreachable states.
#include <cstdio>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "fsm/reach.hpp"
#include "minimize/incspec.hpp"
#include "minimize/sibling.hpp"
#include "workload/generators.hpp"

int main() {
  using namespace bddmin;

  const workload::MachineSpec spec = workload::make_mult_register(8, 4);
  Manager mgr(spec.num_inputs + 2 * spec.num_state_bits);
  std::vector<std::uint32_t> in(spec.num_inputs);
  for (unsigned i = 0; i < spec.num_inputs; ++i) in[i] = i;
  std::vector<std::uint32_t> st;
  std::vector<std::uint32_t> nx;
  for (unsigned k = 0; k < spec.num_state_bits; ++k) {
    st.push_back(spec.num_inputs + 2 * k);
    nx.push_back(spec.num_inputs + 2 * k + 1);
  }
  const fsm::SymbolicFsm sym = spec.build(mgr, in, st);

  std::printf("machine %s: %u state bits\n\n", spec.name.c_str(),
              spec.num_state_bits);
  std::printf("%4s %8s %8s %8s %8s %8s  %s\n", "step", "|U|", "|min'd|",
              "restr", "osm_bt", "|R|", "c_onset%");

  unsigned step = 0;
  fsm::ReachOptions opts;
  opts.minimize = [&](Manager& m, Edge f, Edge c) {
    const Edge used = minimize::constrain(m, f, c);
    const Bdd fp(m, f), cp(m, c), up(m, used);
    const std::size_t r = count_nodes(m, minimize::restrict_dc(m, f, c));
    const std::size_t b = count_nodes(m, minimize::osm_bt(m, f, c));
    std::printf("%4u %8zu %8zu %8zu %8zu %8s %9.1f\n", ++step,
                count_nodes(m, f), count_nodes(m, used), r, b, "-",
                100.0 * minimize::c_onset_fraction(m, {f, c}));
    return used;
  };
  const fsm::ReachResult result = fsm::reachable_states(mgr, sym, nx, opts);
  std::printf("\nfixed point after %u steps; reached set has %zu nodes, "
              "%.0f states\n",
              result.iterations, result.reached.size(),
              sat_count(mgr, result.reached.edge(),
                        static_cast<unsigned>(st.size())));

  // Second application (paper intro): minimize the transition functions
  // with the reached states as the care set — unreachable states are
  // don't cares for the next-state logic.  A mod-100 counter is the
  // textbook subject: 28 of its 128 encodings never occur.
  const workload::MachineSpec mm = workload::make_mod_counter(100);
  Manager mgr2(mm.num_inputs + 2 * mm.num_state_bits);
  std::vector<std::uint32_t> in2(mm.num_inputs);
  for (unsigned i = 0; i < mm.num_inputs; ++i) in2[i] = i;
  std::vector<std::uint32_t> st2;
  std::vector<std::uint32_t> nx2;
  for (unsigned k = 0; k < mm.num_state_bits; ++k) {
    st2.push_back(mm.num_inputs + 2 * k);
    nx2.push_back(mm.num_inputs + 2 * k + 1);
  }
  const fsm::SymbolicFsm sym2 = mm.build(mgr2, in2, st2);
  const fsm::ReachResult reach2 = fsm::reachable_states(mgr2, sym2, nx2);
  std::printf("\n%s: %.0f of %u state encodings reachable\n", mm.name.c_str(),
              sat_count(mgr2, reach2.reached.edge(),
                        static_cast<unsigned>(st2.size())),
              1u << mm.num_state_bits);
  std::printf("transition-function minimization against unreachable "
              "states:\n%6s %10s %10s %10s\n", "bit", "original", "restrict",
              "osm_bt");
  std::size_t before = 0;
  std::size_t after = 0;
  for (std::size_t k = 0; k < sym2.next_state.size(); ++k) {
    const Edge slim =
        minimize::restrict_dc(mgr2, sym2.next_state[k], reach2.reached.edge());
    const Edge bt =
        minimize::osm_bt(mgr2, sym2.next_state[k], reach2.reached.edge());
    const std::size_t o = count_nodes(mgr2, sym2.next_state[k]);
    const std::size_t s =
        std::min(count_nodes(mgr2, slim), count_nodes(mgr2, bt));
    before += o;
    after += s;
    std::printf("%6zu %10zu %10zu %10zu\n", k, o, count_nodes(mgr2, slim),
                count_nodes(mgr2, bt));
  }
  std::printf("total: %zu -> %zu nodes (best per bit)\n", before, after);
  return 0;
}
