/// \file fpga_mux_mapping.cpp
/// \brief The paper's third motivating application: multiplexer-based
/// FPGA mapping works from a BDD, so each saved BDD node is a saved MUX
/// cell.  We load incompletely specified circuits from espresso PLA
/// descriptions (a seven-segment decoder whose inputs 10-15 never occur,
/// and a priority encoder whose idle case is unspecified), minimize each
/// output with the paper's heuristics, and compare MUX counts — once
/// under the natural variable order and once after sifting.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "minimize/exact.hpp"
#include "minimize/registry.hpp"
#include "pla/pla.hpp"

namespace {

using namespace bddmin;

void map_circuit(const pla::Pla& circuit) {
  Manager mgr(circuit.num_inputs);
  std::vector<std::uint32_t> vars(circuit.num_inputs);
  std::iota(vars.begin(), vars.end(), 0u);
  const auto specs = pla::output_functions(mgr, circuit, vars);

  std::printf("%s: %u inputs, %u outputs (.type %s)\n", circuit.name.c_str(),
              circuit.num_inputs, circuit.num_outputs, circuit.type.c_str());
  std::printf("%8s %8s %8s %8s %8s %8s\n", "output", "full", "restr", "osm_bt",
              "tsm_td", "exact");

  std::size_t full_total = 0;
  std::size_t best_total = 0;
  std::vector<Bdd> best_covers;
  for (unsigned j = 0; j < circuit.num_outputs; ++j) {
    const auto& spec = specs[j];
    const Bdd f(mgr, spec.f);
    const Bdd restr(mgr, minimize::restrict_dc(mgr, spec.f, spec.c));
    const Bdd bt(mgr, minimize::osm_bt(mgr, spec.f, spec.c));
    const Bdd tsm(mgr, minimize::tsm_td(mgr, spec.f, spec.c));
    const auto exact = minimize::exact_minimum(
        mgr, spec.f, spec.c, circuit.num_inputs, /*max_dc_bits=*/14);
    const std::string label = j < circuit.output_labels.size()
                                  ? circuit.output_labels[j]
                                  : "o" + std::to_string(j);
    std::printf("%8s %8zu %8zu %8zu %8zu %8s\n", label.c_str(), f.size(),
                restr.size(), bt.size(), tsm.size(),
                exact ? std::to_string(exact->size).c_str() : "-");
    full_total += f.size();
    const Bdd best = std::min({restr, bt, tsm}, [](const Bdd& a, const Bdd& b) {
      return a.size() < b.size();
    });
    best_total += best.size();
    best_covers.push_back(best);
  }

  // MUX cells = non-terminal nodes of the shared forest.
  std::vector<Edge> full_roots;
  std::vector<Edge> best_roots;
  for (unsigned j = 0; j < circuit.num_outputs; ++j) {
    full_roots.push_back(specs[j].f);
    best_roots.push_back(best_covers[j].edge());
  }
  std::printf("shared forest: %zu -> %zu MUX cells after minimization\n",
              count_nodes(mgr, full_roots) - 1, count_nodes(mgr, best_roots) - 1);

  // Orthogonal lever: sift the variable order on top of the DC choice.
  mgr.reorder_sift();
  std::printf("after sifting the order as well: %zu MUX cells\n\n",
              count_nodes(mgr, best_roots) - 1);
}

}  // namespace

int main() {
  std::printf("MUX-FPGA mapping from minimized BDDs (application 3 of the "
              "DAC'94 paper)\n\n");
  map_circuit(pla::builtin_pla("sevenseg"));
  map_circuit(pla::builtin_pla("prio8_like"));
  map_circuit(pla::builtin_pla("majority5_like"));
  return 0;
}
