/// \file quickstart.cpp
/// \brief Five-minute tour of the library: build an incompletely
/// specified function, run every minimization heuristic on it, compare
/// sizes against the Theorem 7 lower bound, and dump the winner as DOT.
#include <cstdio>

#include "bdd/bdd.hpp"
#include "bdd/dot.hpp"
#include "bdd/ops.hpp"
#include "minimize/lower_bound.hpp"
#include "minimize/registry.hpp"

int main() {
  using namespace bddmin;

  // A manager over 8 variables x0 (topmost) .. x7.
  Manager mgr(8);
  const Bdd x0(mgr, mgr.var_edge(0));
  const Bdd x1(mgr, mgr.var_edge(1));
  const Bdd x2(mgr, mgr.var_edge(2));
  const Bdd x3(mgr, mgr.var_edge(3));
  const Bdd x4(mgr, mgr.var_edge(4));
  const Bdd x5(mgr, mgr.var_edge(5));

  // f: a mux-and-parity cocktail; c: we only care where x0 | (x4 ^ x5).
  const Bdd f = x0.ite(x1 ^ x2 ^ x3, (x1 & x4) | (x2 & x5));
  const Bdd c = x0 | (x4 ^ x5);
  std::printf("f has %zu BDD nodes; care onset is %.1f%% of the space\n\n",
              f.size(), 100.0 * sat_fraction(mgr, c.edge()));

  std::printf("%-8s %8s  %s\n", "method", "|g|", "is_cover");
  for (const minimize::Heuristic& h : minimize::all_heuristics()) {
    const Bdd g(mgr, h.run(mgr, f.edge(), c.edge()));
    const bool ok = minimize::is_cover(mgr, g.edge(), {f.edge(), c.edge()});
    std::printf("%-8s %8zu  %s\n", h.name.c_str(), g.size(), ok ? "yes" : "NO");
  }
  const minimize::Heuristic sched = minimize::scheduler_heuristic();
  const Bdd via_sched(mgr, sched.run(mgr, f.edge(), c.edge()));
  std::printf("%-8s %8zu  (Section 3.4 schedule)\n", sched.name.c_str(),
              via_sched.size());

  const minimize::LowerBoundResult lb =
      minimize::constrain_lower_bound(mgr, f.edge(), c.edge());
  std::printf("\nTheorem 7 lower bound: %zu nodes (from %zu cubes of c)\n",
              lb.bound, lb.cubes_examined);

  // Render the smallest cover found by osm_bt for inspection.
  const Bdd winner(mgr, minimize::osm_bt(mgr, f.edge(), c.edge()));
  const std::vector<Edge> roots{winner.edge()};
  const std::vector<std::string> names{"g"};
  std::printf("\nDOT of the osm_bt cover:\n%s\n",
              to_dot(mgr, roots, names).c_str());
  return 0;
}
