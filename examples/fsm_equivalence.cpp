/// \file fsm_equivalence.cpp
/// \brief The paper's host application: product-machine equivalence
/// checking with BDD minimization at every frontier step (SIS's
/// `verify_fsm -m product`).  Checks a KISS2 controller against a
/// renamed copy of itself and a sabotaged mutant, printing the
/// minimization statistics the DAC'94 experiments collect.
#include <cstdio>

#include "fsm/equiv.hpp"
#include "fsm/kiss.hpp"
#include "harness/intercept.hpp"
#include "harness/render.hpp"
#include "workload/builtin_fsms.hpp"

int main() {
  using namespace bddmin;

  const fsm::Fsm tlc = workload::builtin_fsm("tlc_like");
  std::printf("machine %s: %u inputs, %u outputs, %zu states\n",
              tlc.name.c_str(), tlc.num_inputs, tlc.num_outputs,
              tlc.states.size());

  // 1. Self-equivalence with all heuristics intercepted.
  harness::Interceptor interceptor(minimize::all_heuristics());
  fsm::EquivOptions opts;
  opts.minimize = interceptor.hook();
  const fsm::EquivResult self =
      fsm::check_self_equivalence(fsm::spec_from_fsm(tlc), opts);
  std::printf("self-check: %s after %u BFS steps, %.0f product states\n",
              self.equivalent ? "EQUIVALENT" : "DIFFERENT", self.iterations,
              self.product_states);
  std::printf("minimization calls: %zu total, %zu kept after filters\n\n",
              interceptor.total_calls(), interceptor.records().size());
  if (!interceptor.records().empty()) {
    const harness::Table3 table =
        harness::aggregate_table3(interceptor.names(), interceptor.records());
    std::printf("%s\n", harness::render_table3(table).c_str());
  }

  // 2. A mutant with one wrong output must be caught, with a replayable
  // distinguishing input sequence.
  fsm::Fsm mutant = tlc;
  // Flip a light bit on the HG->HY transition (a row that overlaps no
  // other, so the mutant stays deterministic).
  mutant.transitions[2].output[0] ^= 1;
  const fsm::MachineSpec spec_good = fsm::spec_from_fsm(tlc);
  const fsm::MachineSpec spec_bad = fsm::spec_from_fsm(mutant);
  const fsm::EquivResult diff = fsm::check_equivalence(spec_good, spec_bad);
  std::printf("mutant check: %s (expected DIFFERENT)\n",
              diff.equivalent ? "EQUIVALENT" : "DIFFERENT");
  if (diff.counterexample) {
    std::printf("distinguishing input sequence (c tl ts):");
    for (const auto& step : diff.counterexample->inputs) {
      std::printf("  ");
      for (const bool bit : step) std::printf("%d", bit ? 1 : 0);
    }
    std::printf("\nreplay confirms divergence: %s\n",
                fsm::validate_counterexample(spec_good, spec_bad,
                                             *diff.counterexample)
                    ? "yes"
                    : "NO");
  }

  // 3. Functional (constrain-based range) image agrees with relational.
  fsm::EquivOptions functional;
  functional.image_method = fsm::ImageMethod::kFunctional;
  const fsm::EquivResult f2 =
      fsm::check_self_equivalence(fsm::spec_from_fsm(tlc), functional);
  std::printf("functional-image self-check: %s, %.0f product states\n",
              f2.equivalent ? "EQUIVALENT" : "DIFFERENT", f2.product_states);
  return diff.equivalent || !self.equivalent || !f2.equivalent;
}
