/// \file variable_reordering.cpp
/// \brief The orthogonal size lever: dynamic variable reordering.  The
/// DAC'94 paper fixes the variable order and spends don't-care freedom;
/// this example shows the complementary knob on the classic
/// order-sensitive function x0·xn + x1·x(n+1) + ... and how the two
/// compose (minimize first, then sift).
#include <cstdio>
#include <numeric>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/ops.hpp"
#include "minimize/sibling.hpp"

int main() {
  using namespace bddmin;
  constexpr unsigned kPairs = 8;
  Manager mgr(2 * kPairs);

  // f = OR of x_k & x_(pairs+k): exponential under the initial order.
  Bdd f(mgr, kZero);
  for (unsigned k = 0; k < kPairs; ++k) {
    const Bdd a(mgr, mgr.var_edge(k));
    const Bdd b(mgr, mgr.var_edge(kPairs + k));
    f |= a & b;
  }
  std::printf("pairing function over %u pairs\n", kPairs);
  std::printf("  initial order (selectors first): %6zu nodes\n", f.size());

  mgr.reorder_sift();
  std::printf("  after sifting:                   %6zu nodes\n", f.size());
  std::printf("  order found:");
  for (const std::uint32_t v : mgr.current_order()) std::printf(" x%u", v);
  std::printf("\n\n");

  // Back to the bad order, then hand-set the known-good interleaving.
  std::vector<std::uint32_t> identity(2 * kPairs);
  std::iota(identity.begin(), identity.end(), 0u);
  mgr.set_order(identity);
  std::vector<std::uint32_t> interleaved;
  for (unsigned k = 0; k < kPairs; ++k) {
    interleaved.push_back(k);
    interleaved.push_back(kPairs + k);
  }
  mgr.set_order(interleaved);
  std::printf("explicit interleaved order:        %6zu nodes\n\n", f.size());

  // Compose with don't-care minimization: care only where the first
  // selector pair is active.
  mgr.set_order(identity);
  const Bdd care(mgr,
                 mgr.or_(mgr.var_edge(0), mgr.var_edge(kPairs)));
  const Bdd g(mgr, minimize::restrict_dc(mgr, f.edge(), care.edge()));
  std::printf("restrict against c = x0 | x%u:      %6zu nodes\n", kPairs,
              g.size());
  mgr.reorder_sift();
  std::printf("and sifted on top:                 %6zu nodes\n", g.size());
  return 0;
}
