
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bdd/bdd.cpp" "src/CMakeFiles/bddmin.dir/bdd/bdd.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/bdd/bdd.cpp.o.d"
  "/root/repo/src/bdd/cube.cpp" "src/CMakeFiles/bddmin.dir/bdd/cube.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/bdd/cube.cpp.o.d"
  "/root/repo/src/bdd/dot.cpp" "src/CMakeFiles/bddmin.dir/bdd/dot.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/bdd/dot.cpp.o.d"
  "/root/repo/src/bdd/io.cpp" "src/CMakeFiles/bddmin.dir/bdd/io.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/bdd/io.cpp.o.d"
  "/root/repo/src/bdd/manager.cpp" "src/CMakeFiles/bddmin.dir/bdd/manager.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/bdd/manager.cpp.o.d"
  "/root/repo/src/bdd/ops.cpp" "src/CMakeFiles/bddmin.dir/bdd/ops.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/bdd/ops.cpp.o.d"
  "/root/repo/src/bdd/truth_table.cpp" "src/CMakeFiles/bddmin.dir/bdd/truth_table.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/bdd/truth_table.cpp.o.d"
  "/root/repo/src/fsm/encoding.cpp" "src/CMakeFiles/bddmin.dir/fsm/encoding.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/fsm/encoding.cpp.o.d"
  "/root/repo/src/fsm/equiv.cpp" "src/CMakeFiles/bddmin.dir/fsm/equiv.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/fsm/equiv.cpp.o.d"
  "/root/repo/src/fsm/fsm.cpp" "src/CMakeFiles/bddmin.dir/fsm/fsm.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/fsm/fsm.cpp.o.d"
  "/root/repo/src/fsm/image.cpp" "src/CMakeFiles/bddmin.dir/fsm/image.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/fsm/image.cpp.o.d"
  "/root/repo/src/fsm/kiss.cpp" "src/CMakeFiles/bddmin.dir/fsm/kiss.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/fsm/kiss.cpp.o.d"
  "/root/repo/src/fsm/reach.cpp" "src/CMakeFiles/bddmin.dir/fsm/reach.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/fsm/reach.cpp.o.d"
  "/root/repo/src/harness/csv.cpp" "src/CMakeFiles/bddmin.dir/harness/csv.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/harness/csv.cpp.o.d"
  "/root/repo/src/harness/intercept.cpp" "src/CMakeFiles/bddmin.dir/harness/intercept.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/harness/intercept.cpp.o.d"
  "/root/repo/src/harness/render.cpp" "src/CMakeFiles/bddmin.dir/harness/render.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/harness/render.cpp.o.d"
  "/root/repo/src/harness/stats.cpp" "src/CMakeFiles/bddmin.dir/harness/stats.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/harness/stats.cpp.o.d"
  "/root/repo/src/minimize/exact.cpp" "src/CMakeFiles/bddmin.dir/minimize/exact.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/minimize/exact.cpp.o.d"
  "/root/repo/src/minimize/incspec.cpp" "src/CMakeFiles/bddmin.dir/minimize/incspec.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/minimize/incspec.cpp.o.d"
  "/root/repo/src/minimize/level.cpp" "src/CMakeFiles/bddmin.dir/minimize/level.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/minimize/level.cpp.o.d"
  "/root/repo/src/minimize/lower_bound.cpp" "src/CMakeFiles/bddmin.dir/minimize/lower_bound.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/minimize/lower_bound.cpp.o.d"
  "/root/repo/src/minimize/matching.cpp" "src/CMakeFiles/bddmin.dir/minimize/matching.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/minimize/matching.cpp.o.d"
  "/root/repo/src/minimize/registry.cpp" "src/CMakeFiles/bddmin.dir/minimize/registry.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/minimize/registry.cpp.o.d"
  "/root/repo/src/minimize/schedule.cpp" "src/CMakeFiles/bddmin.dir/minimize/schedule.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/minimize/schedule.cpp.o.d"
  "/root/repo/src/minimize/sibling.cpp" "src/CMakeFiles/bddmin.dir/minimize/sibling.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/minimize/sibling.cpp.o.d"
  "/root/repo/src/pla/pla.cpp" "src/CMakeFiles/bddmin.dir/pla/pla.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/pla/pla.cpp.o.d"
  "/root/repo/src/workload/builtin_fsms.cpp" "src/CMakeFiles/bddmin.dir/workload/builtin_fsms.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/workload/builtin_fsms.cpp.o.d"
  "/root/repo/src/workload/generators.cpp" "src/CMakeFiles/bddmin.dir/workload/generators.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/workload/generators.cpp.o.d"
  "/root/repo/src/workload/instances.cpp" "src/CMakeFiles/bddmin.dir/workload/instances.cpp.o" "gcc" "src/CMakeFiles/bddmin.dir/workload/instances.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
