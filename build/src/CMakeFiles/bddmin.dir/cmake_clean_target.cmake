file(REMOVE_RECURSE
  "libbddmin.a"
)
