# Empty dependencies file for bddmin.
# This may be replaced when dependencies are built.
