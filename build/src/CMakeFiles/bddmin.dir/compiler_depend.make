# Empty compiler generated dependencies file for bddmin.
# This may be replaced when dependencies are built.
