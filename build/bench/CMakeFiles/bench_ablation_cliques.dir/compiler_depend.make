# Empty compiler generated dependencies file for bench_ablation_cliques.
# This may be replaced when dependencies are built.
