file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cliques.dir/bench_ablation_cliques.cpp.o"
  "CMakeFiles/bench_ablation_cliques.dir/bench_ablation_cliques.cpp.o.d"
  "bench_ablation_cliques"
  "bench_ablation_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
