file(REMOVE_RECURSE
  "CMakeFiles/bench_bdd_ops.dir/bench_bdd_ops.cpp.o"
  "CMakeFiles/bench_bdd_ops.dir/bench_bdd_ops.cpp.o.d"
  "bench_bdd_ops"
  "bench_bdd_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bdd_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
