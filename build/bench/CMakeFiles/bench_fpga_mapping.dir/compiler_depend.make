# Empty compiler generated dependencies file for bench_fpga_mapping.
# This may be replaced when dependencies are built.
