file(REMOVE_RECURSE
  "CMakeFiles/bench_fpga_mapping.dir/bench_fpga_mapping.cpp.o"
  "CMakeFiles/bench_fpga_mapping.dir/bench_fpga_mapping.cpp.o.d"
  "bench_fpga_mapping"
  "bench_fpga_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpga_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
