# Empty dependencies file for bench_image_methods.
# This may be replaced when dependencies are built.
