file(REMOVE_RECURSE
  "CMakeFiles/bench_image_methods.dir/bench_image_methods.cpp.o"
  "CMakeFiles/bench_image_methods.dir/bench_image_methods.cpp.o.d"
  "bench_image_methods"
  "bench_image_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_image_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
