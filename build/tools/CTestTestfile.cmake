# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/bddmin_cli")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_minimize "/root/repo/build/tools/bddmin_cli" "minimize" "/root/repo/data/sevenseg.pla" "--sift")
set_tests_properties(cli_minimize PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_minimize_one "/root/repo/build/tools/bddmin_cli" "minimize" "/root/repo/data/prio8_like.pla" "--heuristic" "osm_bt")
set_tests_properties(cli_minimize_one PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_equiv_self "/root/repo/build/tools/bddmin_cli" "equiv" "/root/repo/data/tlc_like.kiss" "/root/repo/data/tlc_like.kiss" "--stats")
set_tests_properties(cli_equiv_self PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_equiv_differs "/root/repo/build/tools/bddmin_cli" "equiv" "/root/repo/data/tlc_like.kiss" "/root/repo/data/tlc_mutant.kiss")
set_tests_properties(cli_equiv_differs PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_reach "/root/repo/build/tools/bddmin_cli" "reach" "/root/repo/data/ctrl_like.kiss")
set_tests_properties(cli_reach PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
