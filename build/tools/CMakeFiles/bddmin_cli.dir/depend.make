# Empty dependencies file for bddmin_cli.
# This may be replaced when dependencies are built.
