file(REMOVE_RECURSE
  "CMakeFiles/bddmin_cli.dir/bddmin_cli.cpp.o"
  "CMakeFiles/bddmin_cli.dir/bddmin_cli.cpp.o.d"
  "bddmin_cli"
  "bddmin_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bddmin_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
