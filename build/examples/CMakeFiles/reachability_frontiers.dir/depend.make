# Empty dependencies file for reachability_frontiers.
# This may be replaced when dependencies are built.
