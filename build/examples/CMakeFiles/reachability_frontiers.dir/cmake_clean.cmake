file(REMOVE_RECURSE
  "CMakeFiles/reachability_frontiers.dir/reachability_frontiers.cpp.o"
  "CMakeFiles/reachability_frontiers.dir/reachability_frontiers.cpp.o.d"
  "reachability_frontiers"
  "reachability_frontiers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reachability_frontiers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
