file(REMOVE_RECURSE
  "CMakeFiles/fsm_equivalence.dir/fsm_equivalence.cpp.o"
  "CMakeFiles/fsm_equivalence.dir/fsm_equivalence.cpp.o.d"
  "fsm_equivalence"
  "fsm_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsm_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
