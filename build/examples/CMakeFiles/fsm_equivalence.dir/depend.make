# Empty dependencies file for fsm_equivalence.
# This may be replaced when dependencies are built.
