# Empty dependencies file for fpga_mux_mapping.
# This may be replaced when dependencies are built.
