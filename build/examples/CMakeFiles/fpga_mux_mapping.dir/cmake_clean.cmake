file(REMOVE_RECURSE
  "CMakeFiles/fpga_mux_mapping.dir/fpga_mux_mapping.cpp.o"
  "CMakeFiles/fpga_mux_mapping.dir/fpga_mux_mapping.cpp.o.d"
  "fpga_mux_mapping"
  "fpga_mux_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_mux_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
