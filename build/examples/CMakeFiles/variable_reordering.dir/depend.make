# Empty dependencies file for variable_reordering.
# This may be replaced when dependencies are built.
