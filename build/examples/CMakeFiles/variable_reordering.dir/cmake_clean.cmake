file(REMOVE_RECURSE
  "CMakeFiles/variable_reordering.dir/variable_reordering.cpp.o"
  "CMakeFiles/variable_reordering.dir/variable_reordering.cpp.o.d"
  "variable_reordering"
  "variable_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variable_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
