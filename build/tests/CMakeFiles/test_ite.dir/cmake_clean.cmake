file(REMOVE_RECURSE
  "CMakeFiles/test_ite.dir/test_ite.cpp.o"
  "CMakeFiles/test_ite.dir/test_ite.cpp.o.d"
  "test_ite"
  "test_ite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
