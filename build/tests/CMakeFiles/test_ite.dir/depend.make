# Empty dependencies file for test_ite.
# This may be replaced when dependencies are built.
