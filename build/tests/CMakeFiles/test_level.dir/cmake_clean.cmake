file(REMOVE_RECURSE
  "CMakeFiles/test_level.dir/test_level.cpp.o"
  "CMakeFiles/test_level.dir/test_level.cpp.o.d"
  "test_level"
  "test_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
