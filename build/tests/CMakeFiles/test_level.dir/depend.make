# Empty dependencies file for test_level.
# This may be replaced when dependencies are built.
