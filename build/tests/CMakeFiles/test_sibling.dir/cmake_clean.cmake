file(REMOVE_RECURSE
  "CMakeFiles/test_sibling.dir/test_sibling.cpp.o"
  "CMakeFiles/test_sibling.dir/test_sibling.cpp.o.d"
  "test_sibling"
  "test_sibling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sibling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
