# Empty compiler generated dependencies file for test_sibling.
# This may be replaced when dependencies are built.
