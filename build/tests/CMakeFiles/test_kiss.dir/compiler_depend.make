# Empty compiler generated dependencies file for test_kiss.
# This may be replaced when dependencies are built.
