file(REMOVE_RECURSE
  "CMakeFiles/test_builtin_fsms.dir/test_builtin_fsms.cpp.o"
  "CMakeFiles/test_builtin_fsms.dir/test_builtin_fsms.cpp.o.d"
  "test_builtin_fsms"
  "test_builtin_fsms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_builtin_fsms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
