# Empty dependencies file for test_builtin_fsms.
# This may be replaced when dependencies are built.
