file(REMOVE_RECURSE
  "CMakeFiles/test_incspec.dir/test_incspec.cpp.o"
  "CMakeFiles/test_incspec.dir/test_incspec.cpp.o.d"
  "test_incspec"
  "test_incspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_incspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
