# Empty dependencies file for test_incspec.
# This may be replaced when dependencies are built.
