file(REMOVE_RECURSE
  "CMakeFiles/test_instances.dir/test_instances.cpp.o"
  "CMakeFiles/test_instances.dir/test_instances.cpp.o.d"
  "test_instances"
  "test_instances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_instances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
