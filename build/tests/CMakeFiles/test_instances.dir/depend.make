# Empty dependencies file for test_instances.
# This may be replaced when dependencies are built.
