file(REMOVE_RECURSE
  "CMakeFiles/test_equiv.dir/test_equiv.cpp.o"
  "CMakeFiles/test_equiv.dir/test_equiv.cpp.o.d"
  "test_equiv"
  "test_equiv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equiv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
