# Empty compiler generated dependencies file for test_equiv.
# This may be replaced when dependencies are built.
